//! Property-based tests for the PM region's persistence semantics.

use pmem::{PmAddr, PmRegion, CACHELINE};
use proptest::prelude::*;

const REGION: usize = 64 * 1024;

#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, data: Vec<u8> },
    Flush { addr: u64, len: u16 },
    Fence,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0..REGION as u64 - 512,
            prop::collection::vec(any::<u8>(), 1..256)
        )
            .prop_map(|(addr, data)| Op::Write { addr, data }),
        (0..REGION as u64 - 512, 1..512u16).prop_map(|(addr, len)| Op::Flush { addr, len }),
        Just(Op::Fence),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The live view always equals a shadow model of all writes applied in
    /// order, regardless of interleaved flushes/fences.
    #[test]
    fn live_view_matches_write_model(ops in prop::collection::vec(op_strategy(), 1..64)) {
        let pm = PmRegion::new(REGION);
        let mut model = vec![0u8; REGION];
        for op in &ops {
            match op {
                Op::Write { addr, data } => {
                    pm.write(PmAddr(*addr), data);
                    model[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
                }
                Op::Flush { addr, len } => pm.flush(PmAddr(*addr), *len as usize),
                Op::Fence => pm.fence(),
            }
        }
        let live = pm.read_vec(PmAddr(0), REGION);
        prop_assert_eq!(live, model);
    }

    /// After a crash, every byte equals either the flushed model; bytes in
    /// never-flushed cachelines revert to their last flushed value (zero if
    /// never flushed).
    #[test]
    fn crash_preserves_exactly_flushed_lines(ops in prop::collection::vec(op_strategy(), 1..64)) {
        let pm = PmRegion::with_crash_tracking(REGION);
        let mut live = vec![0u8; REGION];
        let mut persisted = vec![0u8; REGION];
        for op in &ops {
            match op {
                Op::Write { addr, data } => {
                    pm.write(PmAddr(*addr), data);
                    live[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
                }
                Op::Flush { addr, len } => {
                    pm.flush(PmAddr(*addr), *len as usize);
                    // Model: copy whole overlapped cachelines live -> persisted.
                    let first = *addr / CACHELINE;
                    let last = (*addr + *len as u64 - 1) / CACHELINE;
                    for line in first..=last {
                        let s = (line * CACHELINE) as usize;
                        persisted[s..s + CACHELINE as usize]
                            .copy_from_slice(&live[s..s + CACHELINE as usize]);
                    }
                }
                Op::Fence => pm.fence(),
            }
        }
        pm.simulate_crash();
        let after = pm.read_vec(PmAddr(0), REGION);
        prop_assert_eq!(after, persisted);
    }

    /// Flush counting: flushing a range counts exactly the overlapped lines.
    #[test]
    fn flush_counts_lines(addr in 0u64..REGION as u64 - 1024, len in 1usize..1024) {
        let pm = PmRegion::new(REGION);
        pm.write(PmAddr(addr), &vec![1u8; len]);
        let before = pm.stats().snapshot();
        pm.flush(PmAddr(addr), len);
        let d = pm.stats().snapshot().delta(&before);
        let first = addr / CACHELINE;
        let last = (addr + len as u64 - 1) / CACHELINE;
        prop_assert_eq!(d.flushes, last - first + 1);
        prop_assert_eq!(d.redundant_flushes, 0);
    }
}
