//! Property tests for the vector-clock engine.
//!
//! Two layers: algebraic laws of [`VectorClock`] itself, and the
//! headline soundness/completeness property of the happens-before
//! analysis — on randomly generated event DAGs, the engine reports a
//! race between two accesses *iff* the synchronization edges admit no
//! happens-before path between them, cross-checked against a transitive
//! closure computed independently from the generated edges.

use proptest::prelude::*;
use std::sync::atomic::Ordering;

use racecheck::engine::{AtomicState, CellState, Threads};
use racecheck::vc::VectorClock;

fn clock(components: &[u32]) -> VectorClock {
    let mut c = VectorClock::new();
    for (i, &v) in components.iter().enumerate() {
        c.set(i, v);
    }
    c
}

proptest! {
    #[test]
    fn join_is_commutative_idempotent_monotone(
        a in proptest::collection::vec(0u32..20, 0..6),
        b in proptest::collection::vec(0u32..20, 0..6),
    ) {
        let (ca, cb) = (clock(&a), clock(&b));
        let mut ab = ca.clone();
        ab.join(&cb);
        let mut ba = cb.clone();
        ba.join(&ca);
        prop_assert_eq!(&ab, &ba, "join must be commutative");

        let mut aa = ca.clone();
        aa.join(&ca);
        prop_assert_eq!(&aa, &ca, "join must be idempotent");

        prop_assert!(ca.le(&ab), "join must dominate the left input");
        prop_assert!(cb.le(&ab), "join must dominate the right input");
    }

    #[test]
    fn le_is_a_partial_order(
        a in proptest::collection::vec(0u32..20, 0..6),
        b in proptest::collection::vec(0u32..20, 0..6),
    ) {
        let (ca, cb) = (clock(&a), clock(&b));
        prop_assert!(ca.le(&ca), "le must be reflexive");
        if ca.le(&cb) && cb.le(&ca) {
            // Antisymmetry up to trailing zeros.
            for i in 0..ca.len().max(cb.len()) {
                prop_assert_eq!(ca.get(i), cb.get(i));
            }
        }
        let mut join = ca.clone();
        join.join(&cb);
        prop_assert!(ca.le(&join) && cb.le(&join));
    }
}

/// A synthetic concurrent history over `nthreads` threads: each event is
/// either a release-store of an atomic, an acquire-load of one, or an
/// access to the single shared cell. Events are generated per thread in
/// program order; the schedule interleaves them round-robin by a
/// generated permutation-ish skew so different prefixes synchronize
/// differently.
#[derive(Debug, Clone)]
enum Ev {
    /// Release-store atomic `a`.
    Pub(usize),
    /// Acquire-load atomic `a`.
    Sub(usize),
    /// Access the shared cell (`write` flag).
    Touch(bool),
}

fn ev_strategy(natomics: usize) -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0..natomics).prop_map(Ev::Pub),
        (0..natomics).prop_map(Ev::Sub),
        any::<bool>().prop_map(Ev::Touch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Replays a generated interleaved history through the engine and
    /// through an independent happens-before oracle (transitive
    /// reachability over program-order + publish/subscribe edges). The
    /// engine's race verdict for every cell access must match the
    /// oracle's.
    #[test]
    fn race_iff_no_happens_before_path(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(ev_strategy(2), 1..5),
            2..4,
        ),
        skew in any::<u64>(),
    ) {
        let nthreads = per_thread.len();
        let mut th = Threads::root();
        let tids: Vec<usize> = (0..nthreads).map(|_| th.spawn(0)).collect();
        let mut atomics = vec![AtomicState::default(); 2];
        let mut cell = CellState::default();

        // Interleave: repeatedly pick the next thread (by skewed rotation)
        // that still has events.
        let mut idx = vec![0usize; nthreads];
        let mut order: Vec<(usize, Ev)> = Vec::new();
        let mut s = skew | 1;
        loop {
            let remaining: Vec<usize> =
                (0..nthreads).filter(|&t| idx[t] < per_thread[t].len()).collect();
            if remaining.is_empty() {
                break;
            }
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = remaining[(s >> 33) as usize % remaining.len()];
            order.push((t, per_thread[t][idx[t]].clone()));
            idx[t] += 1;
        }

        // Oracle: event index -> set of events known to happen-before it
        // (transitively), built incrementally. Per atomic we track the
        // clock-like "knowledge" as a set of event indices; per thread
        // likewise.
        let mut thread_know: Vec<Vec<usize>> = vec![Vec::new(); nthreads];
        let mut atomic_know: Vec<Option<Vec<usize>>> = vec![None; 2];
        // Cell accesses: (event index, tid, write, knowledge-at-access).
        let mut accesses: Vec<(usize, usize, bool, Vec<usize>)> = Vec::new();

        for (i, (t, ev)) in order.iter().enumerate() {
            let engine_tid = tids[*t];
            match ev {
                Ev::Pub(a) => {
                    th.atomic_store(engine_tid, &mut atomics[*a], i as u64 + 1, Ordering::Release);
                    let mut msg = thread_know[*t].clone();
                    msg.push(i);
                    atomic_know[*a] = Some(msg);
                }
                Ev::Sub(a) => {
                    th.atomic_load(engine_tid, &mut atomics[*a], Ordering::Acquire);
                    if let Some(msg) = &atomic_know[*a] {
                        for &e in msg {
                            if !thread_know[*t].contains(&e) {
                                thread_know[*t].push(e);
                            }
                        }
                    }
                }
                Ev::Touch(write) => {
                    let verdict = if *write {
                        th.cell_write(engine_tid, &mut cell)
                    } else {
                        th.cell_read(engine_tid, &mut cell)
                    };
                    // Oracle verdict: race iff some prior conflicting
                    // access is neither in our knowledge nor by us.
                    let racy = accesses.iter().any(|(e, at, aw, _)| {
                        *at != *t && (*aw || *write) && !thread_know[*t].contains(e)
                    });
                    prop_assert_eq!(
                        verdict.is_err(),
                        racy,
                        "engine and oracle disagree at event {} ({:?})",
                        i,
                        ev
                    );
                    accesses.push((i, *t, *write, thread_know[*t].clone()));
                }
            }
            // Program order: later events of t know about event i.
            thread_know[*t].push(i);
        }
    }
}
