//! Model of the flat-combining publish/collect protocol from
//! `flatstore::batch` (`PublishList` + the per-list consumer tokens in
//! `Group`), explored exhaustively (bounded) by the racecheck scheduler.
//!
//! The protocol has three happens-before edges, each with a seeded-buggy
//! Relaxed variant below proving the checker would catch its loss:
//!
//! 1. **producer → consumer**: slot write, then `Release` store of
//!    `tail`; a consumer's `Acquire` load of `tail` orders the slot read
//!    after the write (`publish` parameter);
//! 2. **consumer → producer**: slot vacate, then `Release` store of
//!    `head`; the producer's `Acquire` load of `head` proves the slot it
//!    is about to reuse was taken out (`vacate` parameter);
//! 3. **consumer → consumer**: leaders hand a list over through the
//!    token's `Acquire` CAS / `Release` clear — exercised by the two
//!    concurrent leaders in the clean run (mutual exclusion comes from
//!    the CAS itself; the edge orders one drain's cursor/slot effects
//!    before the next).
//!
//! The group's `pending` counter is deliberately absent: it is an
//! emptiness hint, not part of the safety protocol.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use racecheck::model::{
    check, check_race, thread, AtomicBool, AtomicU64, Config, FailureKind, Mutex, RaceCell,
};

const CAP: u64 = 2;

struct List {
    head: AtomicU64,
    tail: AtomicU64,
    slots: Vec<RaceCell<u64>>,
    token: AtomicBool,
}

impl List {
    fn new() -> Arc<List> {
        Arc::new(List {
            head: AtomicU64::named("head", 0),
            tail: AtomicU64::named("tail", 0),
            slots: vec![RaceCell::named("slot0", 0), RaceCell::named("slot1", 0)],
            token: AtomicBool::named("token", false),
        })
    }

    /// `PublishList::push`: capacity check through `head`, slot store,
    /// cursor publish. Gives up (returns false) when full — the real
    /// producer self-persists instead of blocking.
    fn push(&self, v: u64, publish: Ordering) -> bool {
        let t = self.tail.load(Ordering::Relaxed); // producer-private
        if t - self.head.load(Ordering::Acquire) == CAP {
            return false;
        }
        self.slots[(t % CAP) as usize].write(v);
        self.tail.store(t + 1, publish);
        true
    }

    /// `PublishList::drain` (token already held): take every published
    /// slot, then publish the vacated range through `head`.
    fn drain(&self, out: &mut Vec<u64>, vacate: Ordering) {
        let h = self.head.load(Ordering::Relaxed); // ordered by the token
        let t = self.tail.load(Ordering::Acquire);
        let mut i = h;
        while i != t {
            let slot = &self.slots[(i % CAP) as usize];
            out.push(slot.read());
            slot.write(0); // the `take()` vacating the slot
            i += 1;
        }
        self.head.store(t, vacate);
    }

    /// `Group::collect` for one list: claim the consumer token, drain,
    /// release. Returns what it won.
    fn collect(&self, vacate: Ordering) -> Vec<u64> {
        let mut out = Vec::new();
        if self
            .token
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.drain(&mut out, vacate);
            self.token.store(false, Ordering::Release);
        }
        out
    }
}

/// One producer posting three records through a 2-slot list (so the
/// third post must reuse a vacated slot — edge 2 is load-bearing, not
/// just the capacity check) and two concurrent leaders sweeping it.
fn publish_list_model(publish: Ordering, vacate: Ordering) {
    let list = List::new();
    let consumed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::named("consumed", Vec::new()));

    let l = Arc::clone(&list);
    let producer = thread::spawn(move || {
        let mut pushed = 0u64;
        for v in [100u64, 101, 102] {
            let mut spins = 0;
            loop {
                if l.push(v, publish) {
                    pushed += 1;
                    break;
                }
                spins += 1;
                if spins >= 4 {
                    return pushed; // full and no leader scheduled: give up
                }
                thread::yield_now();
            }
        }
        pushed
    });

    let mut leaders = Vec::new();
    for _ in 0..2 {
        let l = Arc::clone(&list);
        let c = Arc::clone(&consumed);
        leaders.push(thread::spawn(move || {
            for _ in 0..2 {
                let got = l.collect(vacate);
                assert!(got.windows(2).all(|w| w[0] < w[1]), "drain out of order");
                if !got.is_empty() {
                    c.lock().unwrap().extend(got);
                }
                thread::yield_now();
            }
        }));
    }

    let pushed = producer.join().unwrap();
    for leader in leaders {
        leader.join().unwrap();
    }
    // Final sweep: everyone released their token, so the claim must win.
    let rest = list.collect(vacate);
    let mut all = consumed.lock().unwrap().clone();
    all.extend(rest);
    all.sort_unstable();
    let expect: Vec<u64> = (0..pushed).map(|i| 100 + i).collect();
    assert_eq!(all, expect, "each published record consumed exactly once");
}

#[test]
fn publish_list_release_protocol_is_clean() {
    check("publish_list/release", Config::new(), || {
        publish_list_model(Ordering::Release, Ordering::Release)
    });
}

/// Seeded bug for edge 1: a `Relaxed` tail publish severs the edge that
/// orders the producer's slot write before the consumer's read. The
/// checker must report a race on a slot cell.
#[test]
fn publish_list_relaxed_tail_publish_is_caught() {
    let failure = check_race("publish_list/relaxed-publish", Config::new(), || {
        publish_list_model(Ordering::Relaxed, Ordering::Release)
    });
    assert_eq!(failure.kind, FailureKind::Race, "{failure}");
    assert!(
        failure.message.contains("slot"),
        "race should be on a publish-list slot: {failure}"
    );
}

/// Seeded bug for edge 2: a `Relaxed` head store severs the edge that
/// orders a consumer's slot vacate before the producer's reuse of that
/// slot, so the third post races the drain of the first.
#[test]
fn publish_list_relaxed_head_vacate_is_caught() {
    let failure = check_race("publish_list/relaxed-vacate", Config::new(), || {
        publish_list_model(Ordering::Release, Ordering::Relaxed)
    });
    assert_eq!(failure.kind, FailureKind::Race, "{failure}");
    assert!(
        failure.message.contains("slot"),
        "race should be on a publish-list slot: {failure}"
    );
}
