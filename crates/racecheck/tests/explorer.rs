//! Explorer semantics: determinism of exploration, deadlock detection,
//! preemption-bound behaviour, step budgets, and the nondeterminism
//! guard that keeps DFS replay honest.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use racecheck::model::{
    check_race, explore, explore_random, thread, AtomicU64, Config, FailureKind, Mutex,
};

/// A small two-thread model with real scheduling freedom: both threads
/// RMW a shared atomic and briefly hold a mutex.
fn busy_model() {
    let n = Arc::new(AtomicU64::named("n", 0));
    let m = Arc::new(Mutex::named("m", 0u64));

    let (n1, m1) = (Arc::clone(&n), Arc::clone(&m));
    let t1 = thread::spawn(move || {
        n1.fetch_add(1, Ordering::AcqRel);
        *m1.lock().unwrap() += 1;
    });
    let (n2, m2) = (Arc::clone(&n), Arc::clone(&m));
    let t2 = thread::spawn(move || {
        *m2.lock().unwrap() += 10;
        n2.fetch_add(2, Ordering::AcqRel);
    });
    t1.join().unwrap();
    t2.join().unwrap();
    assert_eq!(n.load(Ordering::Acquire), 3);
    assert_eq!(*m.lock().unwrap(), 11);
}

#[test]
fn exploration_is_deterministic() {
    let a = explore(Config::new(), busy_model);
    let b = explore(Config::new(), busy_model);
    assert!(a.failure.is_none(), "{:?}", a.failure);
    assert!(a.complete, "bounded tree should be exhausted");
    assert_eq!(a.schedules, b.schedules, "schedule count must replay");
    assert_eq!(a.digest, b.digest, "schedule digest must replay");
    assert!(a.schedules > 1, "model must have scheduling freedom");
}

#[test]
fn random_exploration_is_seed_deterministic() {
    let a = explore_random(Config::new(), 0xfeed, 20, busy_model);
    let b = explore_random(Config::new(), 0xfeed, 20, busy_model);
    assert!(a.failure.is_none(), "{:?}", a.failure);
    assert_eq!(
        a.digest, b.digest,
        "same seed must give identical schedules"
    );
    assert_eq!(a.schedules, 20);
}

/// Classic ABBA: t1 locks a then b, t2 locks b then a. Requires a
/// preemption between the two acquisitions, so the default bound finds it.
#[test]
fn abba_deadlock_is_detected() {
    let failure = check_race("abba", Config::new(), || {
        let a = Arc::new(Mutex::named("a", ()));
        let b = Arc::new(Mutex::named("b", ()));

        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = thread::spawn(move || {
            let _ga = a1.lock().unwrap();
            let _gb = b1.lock().unwrap();
        });
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = thread::spawn(move || {
            let _gb = b2.lock().unwrap();
            let _ga = a2.lock().unwrap();
        });
        t1.join().unwrap();
        t2.join().unwrap();
    });
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
}

/// A lost update: both threads load-then-store the counter. The bug
/// needs one preemption between a load and its store; with bound 0
/// every thread runs to completion uninterrupted, so the tree is clean,
/// and with bound 1 the assertion fires.
fn lost_update_model() {
    let n = Arc::new(AtomicU64::named("n", 0));

    let bump = |n: Arc<AtomicU64>| {
        let v = n.load(Ordering::Acquire);
        n.store(v + 1, Ordering::Release);
    };
    let n1 = Arc::clone(&n);
    let t1 = thread::spawn(move || bump(n1));
    let n2 = Arc::clone(&n);
    let t2 = thread::spawn(move || bump(n2));
    t1.join().unwrap();
    t2.join().unwrap();
    assert_eq!(n.load(Ordering::Acquire), 2, "lost update");
}

#[test]
fn preemption_bound_gates_what_is_found() {
    let clean = explore(Config::new().preemption_bound(Some(0)), lost_update_model);
    assert!(
        clean.failure.is_none(),
        "bound 0 cannot interleave load/store: {:?}",
        clean.failure
    );
    assert!(clean.complete);

    let failure = check_race(
        "lost-update",
        Config::new().preemption_bound(Some(1)),
        lost_update_model,
    );
    assert_eq!(failure.kind, FailureKind::Panic, "{failure}");
    assert!(failure.message.contains("lost update"), "{failure}");
}

/// The step budget converts runaway schedules into a diagnosable
/// failure instead of a hang.
#[test]
fn step_budget_reports_too_many_steps() {
    let failure = check_race("step-budget", Config::new().max_steps(4), || {
        let n = Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            n.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert_eq!(failure.kind, FailureKind::TooManySteps, "{failure}");
}

/// A model whose behaviour depends on state outside the execution (a
/// process-global counter) breaks replay; the explorer must call that
/// out as nondeterminism rather than mis-explore.
#[test]
fn external_state_is_flagged_as_nondeterminism() {
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    static RUNS: StdAtomicUsize = StdAtomicUsize::new(0);

    let failure = check_race("nondet", Config::new(), || {
        let hidden = RUNS.fetch_add(1, Ordering::Relaxed);
        let n = Arc::new(AtomicU64::new(0));
        let n1 = Arc::clone(&n);
        let t1 = thread::spawn(move || {
            n1.fetch_add(1, Ordering::AcqRel);
        });
        // The extra thread exists only on odd runs — a schedule replay
        // then sees a different enabled set.
        let t2 = if hidden % 2 == 1 {
            let n2 = Arc::clone(&n);
            Some(thread::spawn(move || {
                n2.fetch_add(1, Ordering::AcqRel);
            }))
        } else {
            None
        };
        t1.join().unwrap();
        if let Some(t2) = t2 {
            t2.join().unwrap();
        }
    });
    assert_eq!(failure.kind, FailureKind::Nondeterminism, "{failure}");
}
