//! Extracted models of the workspace's real synchronization protocols,
//! each explored exhaustively (bounded) by the racecheck scheduler.
//!
//! Every model comes in a *clean* form — asserted race-free and
//! invariant-preserving under every explored schedule — and, where the
//! bug class is subtle, a *seeded-buggy* variant that the checker must
//! catch. The buggy variants are the regression tests for the checker
//! itself: if a refactor of the engine stops flagging a Relaxed publish,
//! these fail.
//!
//! Model ↔ source map:
//! * ring publish/consume      ↔ `flatrpc::ring` (SPSC seq envelopes)
//! * completion fulfil/poll    ↔ `flatstore::batch::Completion`
//! * per-key completion gate   ↔ `flatstore::shard` deferred-key FIFO
//! * port park/reuse           ↔ `flatrpc` ClientPort parking
//! * cache fill vs invalidate  ↔ `flatstore::cache` write-through
//! * flight ring append        ↔ `obs::flight` recorder

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use racecheck::model::{
    check, check_race, thread, AtomicU64, Config, FailureKind, Mutex, RaceCell,
};

/// A 2-slot SPSC ring mirroring `flatrpc::ring`: producer reads its own
/// tail Relaxed and the consumer's head Acquire, writes the slot, then
/// publishes with a Release store of the new tail; the consumer mirrors.
fn ring_model(publish: Ordering) {
    const CAP: u64 = 2;
    let head = Arc::new(AtomicU64::named("head", 0));
    let tail = Arc::new(AtomicU64::named("tail", 0));
    let slots: Arc<Vec<RaceCell<u64>>> = Arc::new(vec![
        RaceCell::named("slot0", 0),
        RaceCell::named("slot1", 0),
    ]);

    let (h, t, s) = (Arc::clone(&head), Arc::clone(&tail), Arc::clone(&slots));
    let producer = thread::spawn(move || {
        let mut pushed = 0u64;
        let mut spins = 0;
        while pushed < 2 {
            let tl = t.load(Ordering::Relaxed); // own index
            if tl - h.load(Ordering::Acquire) == CAP {
                spins += 1;
                assert!(spins < 8, "producer livelocked");
                thread::yield_now();
                continue;
            }
            s[(tl % CAP) as usize].write(100 + pushed);
            t.store(tl + 1, publish);
            pushed += 1;
        }
    });

    let mut popped = 0u64;
    let mut spins = 0;
    while popped < 2 {
        let hd = head.load(Ordering::Relaxed); // own index
        if tail.load(Ordering::Acquire) == hd {
            spins += 1;
            if spins >= 8 {
                break; // producer may still be scheduled behind us
            }
            thread::yield_now();
            continue;
        }
        let v = slots[(hd % CAP) as usize].read();
        assert_eq!(v, 100 + popped, "ring delivered out of order");
        head.store(hd + 1, Ordering::Release);
        popped += 1;
        spins = 0;
    }
    producer.join().unwrap();
}

#[test]
fn ring_release_publish_is_clean() {
    check("ring/release", Config::new(), || {
        ring_model(Ordering::Release)
    });
}

/// The seeded-buggy variant: publishing the new tail with `Relaxed`
/// severs the edge that orders the slot write before the consumer's
/// read. The checker must report a data race on a slot cell.
#[test]
fn ring_relaxed_publish_is_caught() {
    let failure = check_race("ring/relaxed-publish", Config::new(), || {
        ring_model(Ordering::Relaxed)
    });
    assert_eq!(failure.kind, FailureKind::Race, "{failure}");
    assert!(
        failure.message.contains("slot"),
        "race should be on a ring slot: {failure}"
    );
}

/// `Completion` fulfil/poll from `flatstore::batch`: the leader writes
/// the reply payload, then `fulfil` publishes the record offset with a
/// Release store on `addr`; a waiter that observes the offset via an
/// Acquire load must see the complete payload.
fn completion_model(fulfil: Ordering) {
    let addr = Arc::new(AtomicU64::named("addr", 0));
    let payload = Arc::new(RaceCell::named("payload", 0u64));

    let (a, p) = (Arc::clone(&addr), Arc::clone(&payload));
    let leader = thread::spawn(move || {
        p.write(0xfee1); // set_repl: written before fulfil publishes it
        a.store(0x40, fulfil);
    });

    // poll(): bounded spin, mirroring the waiter's poll loop.
    for _ in 0..4 {
        if addr.load(Ordering::Acquire) != 0 {
            assert_eq!(payload.read(), 0xfee1, "observed fulfil before payload");
            break;
        }
        thread::yield_now();
    }
    leader.join().unwrap();
}

#[test]
fn completion_release_fulfil_is_clean() {
    check("completion/release", Config::new(), || {
        completion_model(Ordering::Release)
    });
}

#[test]
fn completion_relaxed_fulfil_is_caught() {
    let failure = check_race("completion/relaxed-fulfil", Config::new(), || {
        completion_model(Ordering::Relaxed)
    });
    assert_eq!(failure.kind, FailureKind::Race, "{failure}");
    assert!(
        failure.message.contains("payload"),
        "race should be on the reply payload: {failure}"
    );
}

/// The shard completion-order gate from `flatstore::shard`: ops on the
/// same key must execute exclusively and in arrival order. An op
/// arriving while the key is busy parks in a deferred queue; the
/// finishing op drains it. The per-key value is a `RaceCell`, so a gate
/// that fails to serialize shows up as a data race, and the appended log
/// checks FIFO draining.
struct Gate {
    busy: bool,
    deferred: VecDeque<u64>,
    log: Vec<u64>,
}

fn gate_submit(gate: &Arc<Mutex<Gate>>, value: &Arc<RaceCell<u64>>, op: u64) {
    {
        let mut g = gate.lock().unwrap();
        if g.busy {
            g.deferred.push_back(op);
            return; // the current holder will run it on completion
        }
        g.busy = true;
    }
    let mut run = op;
    loop {
        value.with_mut(|v| *v += run); // the op body: exclusive by the gate
        let mut g = gate.lock().unwrap();
        g.log.push(run);
        match g.deferred.pop_front() {
            Some(next) => run = next,
            None => {
                g.busy = false;
                return;
            }
        }
    }
}

#[test]
fn shard_gate_serializes_and_drains_fifo() {
    check("shard/gate", Config::new(), || {
        let gate = Arc::new(Mutex::named(
            "gate",
            Gate {
                busy: false,
                deferred: VecDeque::new(),
                log: Vec::new(),
            },
        ));
        let value = Arc::new(RaceCell::named("keyval", 0u64));

        let (g1, v1) = (Arc::clone(&gate), Arc::clone(&value));
        let t1 = thread::spawn(move || gate_submit(&g1, &v1, 1));
        let (g2, v2) = (Arc::clone(&gate), Arc::clone(&value));
        let t2 = thread::spawn(move || gate_submit(&g2, &v2, 2));
        t1.join().unwrap();
        t2.join().unwrap();

        let g = gate.lock().unwrap();
        assert!(!g.busy, "gate left busy");
        assert!(g.deferred.is_empty(), "deferred op never drained");
        assert_eq!(g.log.len(), 2, "an op was lost");
        assert_eq!(value.read(), 3, "op bodies did not all run");
    });
}

/// The seeded-buggy gate: running a deferred op *without* holding the
/// busy claim (completion drops `busy` before draining) lets a third
/// submission overlap the deferred body — a race on the key value.
#[test]
fn shard_gate_unclaimed_drain_is_caught() {
    let failure = check_race("shard/unclaimed-drain", Config::new(), || {
        let gate = Arc::new(Mutex::named(
            "gate",
            Gate {
                busy: false,
                deferred: VecDeque::new(),
                log: Vec::new(),
            },
        ));
        let value = Arc::new(RaceCell::named("keyval", 0u64));

        let buggy_submit = |gate: &Arc<Mutex<Gate>>, value: &Arc<RaceCell<u64>>, op: u64| {
            {
                let mut g = gate.lock().unwrap();
                if g.busy {
                    g.deferred.push_back(op);
                    return;
                }
                g.busy = true;
            }
            value.with_mut(|v| *v += op);
            // BUG: release the claim before draining, so a concurrent
            // submit can start while the deferred op still runs.
            let next = {
                let mut g = gate.lock().unwrap();
                g.log.push(op);
                g.busy = false;
                g.deferred.pop_front()
            };
            if let Some(n) = next {
                value.with_mut(|v| *v += n);
                gate.lock().unwrap().log.push(n);
            }
        };

        let (g1, v1) = (Arc::clone(&gate), Arc::clone(&value));
        let s1 = buggy_submit;
        let t1 = thread::spawn(move || s1(&g1, &v1, 1));
        let (g2, v2) = (Arc::clone(&gate), Arc::clone(&value));
        let s2 = buggy_submit;
        let t2 = thread::spawn(move || s2(&g2, &v2, 2));
        let (g3, v3) = (Arc::clone(&gate), Arc::clone(&value));
        let s3 = buggy_submit;
        let t3 = thread::spawn(move || s3(&g3, &v3, 4));
        t1.join().unwrap();
        t2.join().unwrap();
        t3.join().unwrap();
    });
    assert_eq!(failure.kind, FailureKind::Race, "{failure}");
}

/// ClientPort park/reuse from `flatrpc`: detach parks the port in a
/// mutex-guarded free list; attach pops a parked port or mints a fresh
/// one. A port's session state is a `RaceCell` — two clients holding the
/// same port concurrently would be a race.
#[test]
fn port_park_reuse_is_exclusive() {
    check("port/park-reuse", Config::new(), || {
        let parked: Arc<Mutex<Vec<Arc<RaceCell<u64>>>>> =
            Arc::new(Mutex::named("parked", Vec::new()));
        let next_id = Arc::new(AtomicU64::named("next_id", 0));

        let client =
            |parked: Arc<Mutex<Vec<Arc<RaceCell<u64>>>>>, next_id: Arc<AtomicU64>, tag: u64| {
                // attach: reuse a parked port or mint one.
                let port = {
                    let mut p = parked.lock().unwrap();
                    p.pop()
                }
                .unwrap_or_else(|| {
                    next_id.fetch_add(1, Ordering::Relaxed);
                    Arc::new(RaceCell::new(0))
                });
                // session traffic: exclusive use of the port.
                port.write(tag);
                assert_eq!(port.read(), tag, "port shared between clients");
                // detach: park for reuse.
                parked.lock().unwrap().push(port);
            };

        let (p1, n1) = (Arc::clone(&parked), Arc::clone(&next_id));
        let t1 = thread::spawn(move || client(p1, n1, 1));
        let (p2, n2) = (Arc::clone(&parked), Arc::clone(&next_id));
        let t2 = thread::spawn(move || client(p2, n2, 2));
        t1.join().unwrap();
        t2.join().unwrap();

        let minted = next_id.load(Ordering::Relaxed);
        let free = parked.lock().unwrap().len() as u64;
        assert_eq!(minted, free, "a port leaked or was double-parked");
    });
}

/// Cache write-through invalidation from `flatstore::cache`: the writer
/// updates the store, bumps the version, invalidates the cache entry,
/// and only then publishes the ack. A reader that observes the ack and
/// hits the cache must never see the stale value; concurrent fills
/// re-check the version before inserting.
fn cache_model(invalidate_before_ack: bool) {
    let store = Arc::new(Mutex::named("store", 1u64));
    // Cache entry: (value, version-at-fill).
    let cache = Arc::new(Mutex::named("cache", Some((1u64, 0u64))));
    let version = Arc::new(AtomicU64::named("version", 0));
    let ack = Arc::new(AtomicU64::named("ack", 0));

    // Writer: store:=2, then invalidate, then ack (or the buggy order).
    let (s, c, v, a) = (
        Arc::clone(&store),
        Arc::clone(&cache),
        Arc::clone(&version),
        Arc::clone(&ack),
    );
    let writer = thread::spawn(move || {
        *s.lock().unwrap() = 2;
        v.fetch_add(1, Ordering::Release);
        if invalidate_before_ack {
            *c.lock().unwrap() = None;
            a.store(1, Ordering::Release);
        } else {
            // BUG: ack first — a reader can hit the stale entry.
            a.store(1, Ordering::Release);
            *c.lock().unwrap() = None;
        }
    });

    // Filler: warms the cache from the store, version-checked.
    let (s2, c2, v2) = (Arc::clone(&store), Arc::clone(&cache), Arc::clone(&version));
    let filler = thread::spawn(move || {
        let seen = v2.load(Ordering::Acquire);
        let val = *s2.lock().unwrap();
        let mut c = c2.lock().unwrap();
        // Re-check: only install if nothing invalidated since the read.
        if v2.load(Ordering::Acquire) == seen && c.is_none() {
            *c = Some((val, seen));
        }
    });

    // Reader: after the ack, a cache hit must not be stale.
    if ack.load(Ordering::Acquire) == 1 {
        let hit = *cache.lock().unwrap();
        if let Some((val, _)) = hit {
            assert_eq!(val, 2, "acked write but cache served the stale value");
        }
    }
    writer.join().unwrap();
    filler.join().unwrap();
}

#[test]
fn cache_invalidate_before_ack_is_clean() {
    check("cache/invalidate-first", Config::new(), || {
        cache_model(true)
    });
}

#[test]
fn cache_ack_before_invalidate_is_caught() {
    let failure = check_race("cache/ack-first", Config::new(), || cache_model(false));
    assert_eq!(failure.kind, FailureKind::Panic, "{failure}");
    assert!(
        failure.message.contains("stale"),
        "expected the staleness assertion: {failure}"
    );
}

/// The flight recorder ring from `obs::flight`: concurrent appends into
/// a mutex-guarded bounded ring plus a snapshot reader. Bounded, FIFO,
/// and no events lost before the bound.
#[test]
fn flight_ring_append_and_snapshot() {
    check("flight/ring", Config::new(), || {
        const CAP: usize = 2;
        let ring: Arc<Mutex<VecDeque<u64>>> = Arc::new(Mutex::named("flight", VecDeque::new()));

        let push = |ring: &Arc<Mutex<VecDeque<u64>>>, ev: u64| {
            let mut r = ring.lock().unwrap();
            if r.len() == CAP {
                r.pop_front();
            }
            r.push_back(ev);
        };

        let r1 = Arc::clone(&ring);
        let t1 = thread::spawn(move || push(&r1, 1));
        let r2 = Arc::clone(&ring);
        let t2 = thread::spawn(move || push(&r2, 2));

        // Snapshot while writers run: always within bounds, always FIFO.
        let snap: Vec<u64> = ring.lock().unwrap().iter().copied().collect();
        assert!(snap.len() <= CAP);
        assert!(snap.windows(2).all(|w| w[0] != w[1]), "duplicate event");

        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(ring.lock().unwrap().len(), 2, "an append was lost");
    });
}
