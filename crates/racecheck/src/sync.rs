//! The production facade: `std::sync` names, checkable on demand.
//!
//! Workspace crates import concurrency primitives from here instead of
//! `std::sync`. In a normal build every item is a *re-export* of the
//! `std` type — identical types, identical codegen, zero cost, and the
//! CI grep gate proves no `cfg(racecheck)` code reaches release
//! artifacts. Building with `RUSTFLAGS="--cfg racecheck"` swaps the
//! facade to [`crate::model`]'s checked lookalikes so the same source
//! can run under the interleaving explorer.
//!
//! The module mirrors the `std::sync` layout (`sync::atomic::AtomicU64`,
//! `sync::Mutex`, …) so migration is a mechanical import swap.

/// Mirror of `std::sync::atomic`.
pub mod atomic {
    #[cfg(not(racecheck))]
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    #[cfg(racecheck)]
    pub use crate::model::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    // `Ordering` is always the std enum — the model consumes it directly.
    pub use std::sync::atomic::Ordering;
}

pub use std::sync::{Arc, Condvar, OnceLock, Weak};

#[cfg(not(racecheck))]
pub use std::sync::{Mutex, MutexGuard};

#[cfg(racecheck)]
pub use crate::model::{Mutex, MutexGuard};

#[cfg(racecheck)]
pub use crate::model::RaceCell;

/// Plain shared memory whose synchronization discipline is *asserted by
/// the author* and *verified under `cfg(racecheck)`* — the release-build
/// counterpart of [`crate::model::RaceCell`]. All accesses compile to
/// bare loads/stores through an `UnsafeCell`.
#[cfg(not(racecheck))]
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: RaceCell promises nothing by itself; callers must order their
// accesses externally (the discipline racecheck models verify). This
// mirrors the contract of sharing an UnsafeCell directly.
#[cfg(not(racecheck))]
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: same externally-ordered contract as `Send` above.
#[cfg(not(racecheck))]
unsafe impl<T: Send> Sync for RaceCell<T> {}

#[cfg(not(racecheck))]
impl<T> RaceCell<T> {
    pub fn new(value: T) -> RaceCell<T> {
        RaceCell {
            data: std::cell::UnsafeCell::new(value),
        }
    }

    /// Name-tagged constructor (the tag only matters under racecheck).
    pub fn named(_name: &str, value: T) -> RaceCell<T> {
        RaceCell::new(value)
    }

    /// Immutable access. Caller asserts no concurrent writer.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        // SAFETY: caller-asserted exclusion, verified by the racecheck
        // model of the surrounding protocol.
        f(unsafe { &*self.data.get() })
    }

    /// Mutable access. Caller asserts exclusivity.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        // SAFETY: caller-asserted exclusivity, verified under racecheck.
        f(unsafe { &mut *self.data.get() })
    }
}

#[cfg(not(racecheck))]
impl<T: Copy> RaceCell<T> {
    /// Copies the value out.
    pub fn read(&self) -> T {
        self.with(|v| *v)
    }

    /// Overwrites the value.
    pub fn write(&self, value: T) {
        self.with_mut(|v| *v = value)
    }
}
