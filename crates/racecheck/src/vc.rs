//! Vector clocks — the partial-order backbone of the happens-before
//! engine.
//!
//! A [`VectorClock`] maps thread ids to logical times. Component `t` is
//! the number of *release points* thread `t` had passed the last time the
//! clock's owner synchronized with it (directly or transitively). Two
//! clocks compare by the pointwise partial order; an access is racy
//! exactly when neither side's clock covers the other's stamp.
//!
//! Clocks grow on demand: a component never written is implicitly 0, so
//! clocks over different thread counts compare naturally.

use std::fmt;

/// A grow-on-demand vector clock over thread ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    t: Vec<u32>,
}

impl VectorClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> VectorClock {
        VectorClock::default()
    }

    /// Logical time of thread `tid` (0 if never synchronized).
    pub fn get(&self, tid: usize) -> u32 {
        self.t.get(tid).copied().unwrap_or(0)
    }

    /// Sets component `tid` to `time`.
    pub fn set(&mut self, tid: usize, time: u32) {
        if self.t.len() <= tid {
            self.t.resize(tid + 1, 0);
        }
        self.t[tid] = time;
    }

    /// Advances component `tid` by one and returns the new time.
    pub fn incr(&mut self, tid: usize) -> u32 {
        let next = self.get(tid) + 1;
        self.set(tid, next);
        next
    }

    /// Pointwise maximum: after `self.join(o)`, `self` covers both inputs.
    pub fn join(&mut self, other: &VectorClock) {
        if self.t.len() < other.t.len() {
            self.t.resize(other.t.len(), 0);
        }
        for (i, &v) in other.t.iter().enumerate() {
            if self.t[i] < v {
                self.t[i] = v;
            }
        }
    }

    /// Pointwise `≤`: true iff every component of `self` is covered by
    /// `other` — i.e. everything `self` knows, `other` knows too.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.t.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }

    /// Whether this clock is the zero clock.
    pub fn is_zero(&self) -> bool {
        self.t.iter().all(|&v| v == 0)
    }

    /// Number of explicit components (trailing zeros may be elided).
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// True when no component is stored explicitly.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.t.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 1);
        b.set(1, 5);
        a.join(&b);
        assert_eq!((a.get(0), a.get(1), a.get(2)), (3, 5, 1));
    }

    #[test]
    fn le_is_pointwise_and_length_agnostic() {
        let mut a = VectorClock::new();
        a.set(1, 2);
        let mut b = VectorClock::new();
        b.set(0, 9);
        b.set(1, 2);
        b.set(5, 1);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        // Trailing zero components don't break the comparison.
        let mut c = VectorClock::new();
        c.set(7, 0);
        assert!(c.le(&a));
        assert!(c.is_zero());
    }

    #[test]
    fn incr_advances_one_component() {
        let mut a = VectorClock::new();
        assert_eq!(a.incr(3), 1);
        assert_eq!(a.incr(3), 2);
        assert_eq!(a.get(3), 2);
        assert_eq!(a.get(0), 0);
    }
}
