//! The checked concurrency model: drop-in `std::sync` lookalikes whose
//! every operation is a scheduling choice point feeding the
//! happens-before engine.
//!
//! Code under test runs inside [`explore`]/[`check`] as a closure; it
//! creates [`AtomicU64`]-family atomics, [`Mutex`]es and [`RaceCell`]s,
//! spawns model threads with [`thread::spawn`], and the explorer runs
//! the closure once per schedule. Within one schedule exactly one model
//! thread executes at a time (a token handed off at visible
//! operations), so plain-memory accesses through [`RaceCell`] are
//! physically serialized — the vector-clock engine then reports the
//! *logical* races the memory orderings fail to forbid.
//!
//! Models must be finite: no unbounded spin loops. Poll loops should
//! retry a bounded number of times and call [`thread::yield_now`]
//! between attempts — a yielded thread is only rescheduled once every
//! other thread is blocked or finished, which keeps the schedule tree
//! small and makes bounded retries sufficient.

mod exec;
mod explore;

pub use exec::{Failure, FailureKind};
pub use explore::{check, check_race, explore, explore_random, Config, Report};

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use exec::{AbortToken, ApplyOutcome, ExecState, Execution, Status};

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (Arc<Execution>, usize) {
    CTX.with(|c| c.borrow().clone())
        .expect("racecheck model type used outside explore()/check()")
}

/// Returns the calling model thread's id, panicking with a pointer check
/// if `exec` belongs to a different (stale) execution.
fn ctx_tid(exec: &Arc<Execution>) -> usize {
    let (cur, tid) = ctx();
    assert!(
        Arc::ptr_eq(&cur, exec),
        "racecheck model object used across executions — create objects inside the model closure"
    );
    tid
}

pub(crate) fn set_ctx(exec: Arc<Execution>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

fn ordering_name(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "Relaxed",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        Ordering::AcqRel => "AcqRel",
        Ordering::SeqCst => "SeqCst",
        _ => "?",
    }
}

/// A model 64-bit atomic; the base everything else wraps.
#[derive(Debug)]
pub struct AtomicU64 {
    exec: Arc<Execution>,
    id: usize,
    name: String,
}

impl AtomicU64 {
    pub fn new(value: u64) -> AtomicU64 {
        let (exec, _) = ctx();
        let id = exec.register_atomic(value);
        AtomicU64 {
            exec,
            id,
            name: format!("atomic{id}"),
        }
    }

    /// Like [`AtomicU64::new`] with a trace-friendly name.
    pub fn named(name: &str, value: u64) -> AtomicU64 {
        let mut a = AtomicU64::new(value);
        a.name = name.to_string();
        a
    }

    pub fn load(&self, order: Ordering) -> u64 {
        let tid = ctx_tid(&self.exec);
        let (id, name) = (self.id, &self.name);
        self.exec.visible(tid, |st: &mut ExecState| {
            let v = st.threads.atomic_load(tid, &mut st.atomics[id], order);
            Execution::trace(
                st,
                tid,
                format!("{name}.load({}) -> {v}", ordering_name(order)),
            );
            ApplyOutcome::Done(v)
        })
    }

    pub fn store(&self, value: u64, order: Ordering) {
        let tid = ctx_tid(&self.exec);
        let (id, name) = (self.id, &self.name);
        self.exec.visible(tid, |st: &mut ExecState| {
            st.threads
                .atomic_store(tid, &mut st.atomics[id], value, order);
            Execution::trace(
                st,
                tid,
                format!("{name}.store({value}, {})", ordering_name(order)),
            );
            ApplyOutcome::Done(())
        })
    }

    fn rmw(&self, op: &str, order: Ordering, f: impl Fn(u64) -> u64) -> u64 {
        let tid = ctx_tid(&self.exec);
        let (id, name) = (self.id, &self.name);
        self.exec.visible(tid, |st: &mut ExecState| {
            let old = st.atomics[id].value;
            let new = f(old);
            st.threads.atomic_rmw(tid, &mut st.atomics[id], new, order);
            Execution::trace(
                st,
                tid,
                format!("{name}.{op}({}) {old} -> {new}", ordering_name(order)),
            );
            ApplyOutcome::Done(old)
        })
    }

    pub fn swap(&self, value: u64, order: Ordering) -> u64 {
        self.rmw("swap", order, |_| value)
    }

    pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        self.rmw("fetch_add", order, |old| old.wrapping_add(v))
    }

    pub fn fetch_sub(&self, v: u64, order: Ordering) -> u64 {
        self.rmw("fetch_sub", order, |old| old.wrapping_sub(v))
    }

    pub fn fetch_or(&self, v: u64, order: Ordering) -> u64 {
        self.rmw("fetch_or", order, |old| old | v)
    }

    pub fn fetch_and(&self, v: u64, order: Ordering) -> u64 {
        self.rmw("fetch_and", order, |old| old & v)
    }

    pub fn fetch_max(&self, v: u64, order: Ordering) -> u64 {
        self.rmw("fetch_max", order, |old| old.max(v))
    }

    /// Strong compare-exchange (the model has no spurious failures, so
    /// `compare_exchange_weak` aliases this).
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let tid = ctx_tid(&self.exec);
        let (id, name) = (self.id, &self.name);
        self.exec.visible(tid, |st: &mut ExecState| {
            let old = st.atomics[id].value;
            let r = if old == current {
                st.threads
                    .atomic_rmw(tid, &mut st.atomics[id], new, success);
                Ok(old)
            } else {
                st.threads.atomic_load(tid, &mut st.atomics[id], failure);
                Err(old)
            };
            let verdict = if r.is_ok() { "ok" } else { "fail" };
            Execution::trace(
                st,
                tid,
                format!("{name}.compare_exchange({current} -> {new}) {verdict} (was {old})"),
            );
            ApplyOutcome::Done(r)
        })
    }

    pub fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.compare_exchange(current, new, success, failure)
    }
}

macro_rules! atomic_wrapper {
    ($name:ident, $ty:ty, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug)]
        pub struct $name(AtomicU64);

        impl $name {
            pub fn new(value: $ty) -> $name {
                $name(AtomicU64::new(value as u64))
            }

            /// Constructor with a trace-friendly name.
            pub fn named(name: &str, value: $ty) -> $name {
                $name(AtomicU64::named(name, value as u64))
            }

            pub fn load(&self, order: Ordering) -> $ty {
                self.0.load(order) as $ty
            }

            pub fn store(&self, value: $ty, order: Ordering) {
                self.0.store(value as u64, order)
            }

            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                self.0.swap(value as u64, order) as $ty
            }

            pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                self.0.rmw("fetch_add", order, |old| {
                    (old as $ty).wrapping_add(v) as u64
                }) as $ty
            }

            pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                self.0.rmw("fetch_sub", order, |old| {
                    (old as $ty).wrapping_sub(v) as u64
                }) as $ty
            }

            pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                self.0
                    .rmw("fetch_max", order, |old| (old as $ty).max(v) as u64) as $ty
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.0
                    .compare_exchange(current as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }
        }
    };
}

atomic_wrapper!(AtomicUsize, usize, "A model `usize` atomic.");
atomic_wrapper!(AtomicU32, u32, "A model `u32` atomic.");

/// A model boolean atomic.
#[derive(Debug)]
pub struct AtomicBool(AtomicU64);

impl AtomicBool {
    pub fn new(value: bool) -> AtomicBool {
        AtomicBool(AtomicU64::new(value as u64))
    }

    /// Constructor with a trace-friendly name.
    pub fn named(name: &str, value: bool) -> AtomicBool {
        AtomicBool(AtomicU64::named(name, value as u64))
    }

    pub fn load(&self, order: Ordering) -> bool {
        self.0.load(order) != 0
    }

    pub fn store(&self, value: bool, order: Ordering) {
        self.0.store(value as u64, order)
    }

    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.0.swap(value as u64, order) != 0
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.0
            .compare_exchange(current as u64, new as u64, success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}

/// A memory fence with ordering `order`.
pub fn fence(order: Ordering) {
    let (exec, tid) = ctx();
    exec.visible(tid, |st: &mut ExecState| {
        st.threads.fence(tid, order);
        Execution::trace(st, tid, format!("fence({})", ordering_name(order)));
        ApplyOutcome::Done(())
    })
}

/// A model mutex mirroring `std::sync::Mutex` (no poisoning: a panicking
/// model thread aborts the whole schedule instead).
#[derive(Debug)]
pub struct Mutex<T> {
    exec: Arc<Execution>,
    id: usize,
    name: String,
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` is serialized by the model mutex itself, whose
// lock/unlock operations run under the execution's scheduling token.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: same lock discipline as `Send` above.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        let (exec, _) = ctx();
        let id = exec.register_mutex();
        Mutex {
            exec,
            id,
            name: format!("mutex{id}"),
            data: UnsafeCell::new(value),
        }
    }

    /// Constructor with a trace-friendly name.
    pub fn named(name: &str, value: T) -> Mutex<T> {
        let mut m = Mutex::new(value);
        m.name = name.to_string();
        m
    }

    /// Acquires the mutex, blocking this model thread (and exploring the
    /// schedules where others run) while it is held.
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        let tid = ctx_tid(&self.exec);
        let (id, name) = (self.id, &self.name);
        self.exec.visible(tid, |st: &mut ExecState| {
            let holder = st.mutexes[id].1;
            match holder {
                None => {
                    st.mutexes[id].1 = Some(tid);
                    let (threads, mutexes) = (&mut st.threads, &mut st.mutexes);
                    threads.mutex_lock(tid, &mut mutexes[id].0);
                    Execution::trace(st, tid, format!("{name}.lock()"));
                    ApplyOutcome::Done(())
                }
                Some(_) => {
                    st.status[tid] = Status::LockWait(id);
                    ApplyOutcome::Block
                }
            }
        });
        Ok(MutexGuard { m: self })
    }

    /// Non-blocking acquire attempt, mirroring std's signature (the model
    /// never poisons, so the error is always `WouldBlock`).
    pub fn try_lock(&self) -> std::sync::TryLockResult<MutexGuard<'_, T>> {
        let tid = ctx_tid(&self.exec);
        let (id, name) = (self.id, &self.name);
        let got = self.exec.visible(tid, |st: &mut ExecState| {
            let free = st.mutexes[id].1.is_none();
            if free {
                st.mutexes[id].1 = Some(tid);
                let (threads, mutexes) = (&mut st.threads, &mut st.mutexes);
                threads.mutex_lock(tid, &mut mutexes[id].0);
            }
            Execution::trace(
                st,
                tid,
                format!("{name}.try_lock() -> {}", if free { "ok" } else { "busy" }),
            );
            ApplyOutcome::Done(free)
        });
        if got {
            Ok(MutexGuard { m: self })
        } else {
            Err(std::sync::TryLockError::WouldBlock)
        }
    }
}

/// RAII guard for [`Mutex`]; unlocking is a visible operation.
pub struct MutexGuard<'a, T> {
    m: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: this thread holds the model mutex, and only the token
        // holder executes, so no other reference to `data` is live.
        unsafe { &*self.m.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive by the same lock discipline as `deref`.
        unsafe { &mut *self.m.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Unwinding (abort teardown or a model assertion failure):
            // the schedule is already dead, and a visible op here would
            // double-panic. Leave the mutex state as-is.
            return;
        }
        let tid = ctx_tid(&self.m.exec);
        let (id, name) = (self.m.id, &self.m.name);
        self.m.exec.visible(tid, |st: &mut ExecState| {
            st.mutexes[id].1 = None;
            let (threads, mutexes) = (&mut st.threads, &mut st.mutexes);
            threads.mutex_unlock(tid, &mut mutexes[id].0);
            for t in 0..st.status.len() {
                if st.status[t] == Status::LockWait(id) {
                    st.status[t] = Status::Runnable;
                }
            }
            Execution::trace(st, tid, format!("{name}.unlock()"));
            ApplyOutcome::Done(())
        })
    }
}

/// Plain (non-atomic) shared memory — the locations data races are
/// detected *on*. The release build's counterpart is an `UnsafeCell`
/// whose discipline this type verifies.
#[derive(Debug)]
pub struct RaceCell<T> {
    exec: Arc<Execution>,
    id: usize,
    name: String,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler serializes all access physically; logically racy
// schedules are reported and abort before user code observes them.
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: same serialization argument as `Send` above.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T> RaceCell<T> {
    pub fn new(value: T) -> RaceCell<T> {
        let (exec, _) = ctx();
        let id = exec.register_cell();
        RaceCell {
            exec,
            id,
            name: format!("cell{id}"),
            data: UnsafeCell::new(value),
        }
    }

    /// Constructor with a trace-friendly name.
    pub fn named(name: &str, value: T) -> RaceCell<T> {
        let mut c = RaceCell::new(value);
        c.name = name.to_string();
        c
    }

    fn access(&self, write: bool) {
        let tid = ctx_tid(&self.exec);
        let (id, name) = (self.id, &self.name);
        self.exec.visible(tid, |st: &mut ExecState| {
            let r = if write {
                st.threads.cell_write(tid, &mut st.cells[id])
            } else {
                st.threads.cell_read(tid, &mut st.cells[id])
            };
            let kind = if write { "write" } else { "read" };
            Execution::trace(st, tid, format!("{name}.{kind}"));
            match r {
                Ok(()) => ApplyOutcome::Done(()),
                Err(race) => ApplyOutcome::Fail(
                    FailureKind::Race,
                    Execution::race_message(&format!("`{name}`"), &race),
                ),
            }
        })
    }

    /// Immutable access; a read event for the race detector.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.access(false);
        // SAFETY: the calling thread holds the scheduling token, so no
        // other model thread executes concurrently; racy schedules abort
        // in `access` before reaching here.
        f(unsafe { &*self.data.get() })
    }

    /// Mutable access; a write event for the race detector.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.access(true);
        // SAFETY: exclusive by the token discipline described in `with`.
        f(unsafe { &mut *self.data.get() })
    }
}

impl<T: Copy> RaceCell<T> {
    /// Copies the value out (read event).
    pub fn read(&self) -> T {
        self.with(|v| *v)
    }

    /// Overwrites the value (write event).
    pub fn write(&self, value: T) {
        self.with_mut(|v| *v = value)
    }
}

/// Model threads: spawn/join with happens-before edges, plus the
/// scheduler-aware yield.
pub mod thread {
    use super::*;

    /// Handle to a model thread; dropping it detaches (the explorer
    /// still waits for the thread at end of schedule).
    pub struct JoinHandle<T> {
        exec: Arc<Execution>,
        tid: usize,
        result: Arc<std::sync::Mutex<Option<T>>>,
    }

    /// Spawns a model thread. The closure runs on its own OS thread but
    /// only ever executes while holding the execution's token.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, parent) = ctx();
        let child = exec.visible(parent, |st: &mut ExecState| {
            let child = Execution::add_thread(st, parent);
            Execution::trace(st, parent, format!("spawn t{child}"));
            ApplyOutcome::Done(child)
        });
        let result = Arc::new(std::sync::Mutex::new(None));
        let slot = Arc::clone(&result);
        let exec2 = Arc::clone(&exec);
        std::thread::Builder::new()
            .name(format!("racecheck-t{child}"))
            .spawn(move || run_thread(exec2, child, f, slot))
            .expect("racecheck failed to spawn a model OS thread");
        JoinHandle {
            exec,
            tid: child,
            result,
        }
    }

    pub(super) fn run_thread<F, T>(
        exec: Arc<Execution>,
        tid: usize,
        f: F,
        slot: Arc<std::sync::Mutex<Option<T>>>,
    ) where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        set_ctx(Arc::clone(&exec), tid);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        match r {
            Ok(v) => {
                *slot.lock().expect("racecheck result slot poisoned") = Some(v);
            }
            Err(p) if p.downcast_ref::<AbortToken>().is_some() => {}
            Err(p) => {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                exec.fail_panic(tid, msg);
            }
        }
        exec.thread_exit(tid);
        clear_ctx();
        exec.os_exit();
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread and joins its clock into the caller's.
        pub fn join(self) -> std::thread::Result<T> {
            let me = ctx_tid(&self.exec);
            let target = self.tid;
            self.exec.visible(me, |st: &mut ExecState| {
                if st.status[target] == Status::Finished {
                    st.threads.join(me, target);
                    Execution::trace(st, me, format!("join t{target}"));
                    ApplyOutcome::Done(())
                } else {
                    st.status[me] = Status::JoinWait(target);
                    ApplyOutcome::Block
                }
            });
            let v = self
                .result
                .lock()
                .expect("racecheck result slot poisoned")
                .take()
                .expect("joined model thread stored no result");
            Ok(v)
        }
    }

    /// Parks this thread until every other thread is blocked or done —
    /// the model-world replacement for spin-loop back-off. Poll loops
    /// must call this between bounded retries.
    pub fn yield_now() {
        let (exec, tid) = ctx();
        let mut parked = false;
        exec.visible(tid, |st: &mut ExecState| {
            if parked {
                Execution::trace(st, tid, "resume".to_string());
                ApplyOutcome::Done(())
            } else {
                parked = true;
                st.status[tid] = Status::Yielded;
                Execution::trace(st, tid, "yield".to_string());
                ApplyOutcome::Block
            }
        })
    }
}
