//! One model execution: a set of OS threads driven one-at-a-time by a
//! cooperative scheduler, with every visible operation (atomic access,
//! lock, cell access, spawn/join/exit, yield, fence) forming a
//! scheduling choice point.
//!
//! The token discipline: exactly one thread is *active* (`current`). An
//! active thread runs local code freely; at each visible operation it
//! first makes the scheduling decision for the next operation (possibly
//! handing the token to another thread and sleeping until re-picked),
//! then applies the operation's happens-before effects through
//! [`crate::engine`] and appends to the event trace. A thread granted
//! the token after waiting executes its pending operation without a new
//! decision — so every decision corresponds to exactly one executed
//! operation, and enabled sets are a pure function of the choice
//! history. That purity is what makes prefix replay — and therefore DFS
//! exploration — deterministic.
//!
//! Thread exit is deliberately *not* a free transition: an exiting
//! thread waits for the token before flipping to `Finished`, otherwise
//! the enabled set seen by other threads' decisions would depend on OS
//! timing instead of the schedule.

use std::sync::{Arc, Condvar, Mutex};

use crate::engine::{AtomicState, CellState, MutexState, Race, Threads};

/// Payload used to unwind model threads when the execution aborts; the
/// thread wrapper swallows it.
pub(crate) struct AbortToken;

/// Why an execution was declared failing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// Two unordered conflicting plain-memory accesses.
    Race,
    /// Every live thread is blocked.
    Deadlock,
    /// A model thread panicked (assertion failure).
    Panic,
    /// A schedule exceeded the step budget (livelock / unbounded spin).
    TooManySteps,
    /// Replay diverged — the model is not deterministic.
    Nondeterminism,
}

/// A failing schedule, with enough context to reproduce and read it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    /// Human-readable description of what fired.
    pub message: String,
    /// The schedule (chosen thread per step) that exposed it.
    pub schedule: Vec<usize>,
    /// The interleaved event trace, one line per visible operation.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "racecheck {:?}: {}", self.kind, self.message)?;
        writeln!(f, "schedule: {:?}", self.schedule)?;
        writeln!(f, "trace ({} events):", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// One recorded scheduling decision.
#[derive(Debug, Clone)]
pub(crate) struct Choice {
    /// Runnable thread ids at the decision (ascending).
    pub enabled: Vec<usize>,
    /// The thread chosen to execute the next operation.
    pub chosen: usize,
    /// The thread that held the token when the decision was made.
    pub prev: usize,
}

impl Choice {
    /// A decision preempts when the previous holder could have continued
    /// but another thread was chosen.
    pub fn is_preemption(&self) -> bool {
        self.chosen != self.prev && self.enabled.contains(&self.prev)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    /// Parked by `yield_now`; schedulable only when no thread is Runnable.
    Yielded,
    /// Waiting for a mutex (by registry index).
    LockWait(usize),
    /// Waiting for a thread to finish.
    JoinWait(usize),
    Finished,
}

/// How the scheduler picks beyond the replay prefix.
#[derive(Debug, Clone)]
pub(crate) enum Policy {
    /// Prefer the current holder, else the lowest runnable id (the DFS
    /// base schedule; alternatives come from the explorer's prefix).
    Deterministic,
    /// Seeded xorshift pick, uniform over the enabled set.
    Random { state: u64 },
}

fn xorshift(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x
}

#[derive(Debug)]
pub(crate) struct ExecState {
    pub status: Vec<Status>,
    /// `granted[t]` is set when a scheduling decision chose `t` to
    /// execute its next operation and `t` has not consumed it yet.
    /// Exactly one grant is outstanding at a time; consuming it is the
    /// only way to execute an operation, which makes every decision
    /// correspond to exactly one op regardless of OS timing.
    pub granted: Vec<bool>,
    /// The active thread (token holder).
    pub current: usize,
    pub step: usize,
    pub max_steps: usize,
    /// Replay prefix: chosen thread per step for the first
    /// `prefix.len()` decisions.
    pub prefix: Vec<usize>,
    pub policy: Policy,
    pub choices: Vec<Choice>,
    pub threads: Threads,
    pub atomics: Vec<AtomicState>,
    /// Mutex registry: happens-before clock + current holder.
    pub mutexes: Vec<(MutexState, Option<usize>)>,
    pub cells: Vec<CellState>,
    pub trace: Vec<String>,
    pub failure: Option<Failure>,
    pub abort: bool,
    /// Threads not yet Finished.
    pub live: usize,
    /// OS wrapper threads still running (run teardown barrier).
    pub os_alive: usize,
    /// Set when the last model thread finished cleanly.
    pub done: bool,
}

#[derive(Debug)]
pub(crate) struct Execution {
    m: Mutex<ExecState>,
    cv: Condvar,
}

impl Execution {
    pub fn new(prefix: Vec<usize>, policy: Policy, max_steps: usize) -> Arc<Execution> {
        Arc::new(Execution {
            m: Mutex::new(ExecState {
                status: vec![Status::Runnable],
                granted: vec![false],
                current: 0,
                step: 0,
                max_steps,
                prefix,
                policy,
                choices: Vec::new(),
                threads: Threads::root(),
                atomics: Vec::new(),
                mutexes: Vec::new(),
                cells: Vec::new(),
                trace: Vec::new(),
                failure: None,
                abort: false,
                live: 1,
                os_alive: 1, // the root wrapper, accounted before it spawns
                done: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        // A poisoned lock means the checker itself panicked while
        // holding it; propagate loudly.
        self.m.lock().expect("racecheck execution state poisoned")
    }

    /// Registers a model atomic; returns its id.
    pub fn register_atomic(&self, value: u64) -> usize {
        let mut st = self.lock();
        st.atomics.push(AtomicState {
            value,
            msg: Default::default(),
        });
        st.atomics.len() - 1
    }

    pub fn register_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutexes.push((MutexState::default(), None));
        st.mutexes.len() - 1
    }

    pub fn register_cell(&self) -> usize {
        let mut st = self.lock();
        st.cells.push(CellState::default());
        st.cells.len() - 1
    }

    /// Records a failure (first one wins) and aborts the execution.
    fn fail(&self, st: &mut ExecState, kind: FailureKind, message: String) {
        if st.failure.is_none() {
            st.failure = Some(Failure {
                kind,
                message,
                schedule: st.choices.iter().map(|c| c.chosen).collect(),
                trace: st.trace.clone(),
            });
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Records a model-thread panic (assertion failure) as the
    /// execution's failure.
    pub fn fail_panic(&self, tid: usize, message: String) {
        let mut st = self.lock();
        let msg = format!("thread t{tid} panicked: {message}");
        self.fail(&mut st, FailureKind::Panic, msg);
    }

    pub fn os_exit(&self) {
        let mut st = self.lock();
        st.os_alive -= 1;
        self.cv.notify_all();
    }

    /// The scheduling decision: pick who executes the next operation.
    /// Called with the lock held by the token holder (`prev`). Returns
    /// the chosen tid, or `None` when the execution ended (completion,
    /// deadlock, step-budget or replay failure — `st.abort`/`st.done`
    /// distinguish them).
    fn pick(&self, st: &mut ExecState, prev: usize) -> Option<usize> {
        let mut enabled: Vec<usize> = (0..st.status.len())
            .filter(|&t| st.status[t] == Status::Runnable)
            .collect();
        if enabled.is_empty() {
            // Spinners parked by yield_now become schedulable only once
            // nothing else can run.
            let yielded: Vec<usize> = (0..st.status.len())
                .filter(|&t| st.status[t] == Status::Yielded)
                .collect();
            if !yielded.is_empty() {
                for &t in &yielded {
                    st.status[t] = Status::Runnable;
                }
                enabled = yielded;
            } else if st.live > 0 {
                let blocked: Vec<String> = (0..st.status.len())
                    .filter(|&t| st.status[t] != Status::Finished)
                    .map(|t| format!("t{t} {:?}", st.status[t]))
                    .collect();
                self.fail(
                    st,
                    FailureKind::Deadlock,
                    format!("all live threads blocked: {}", blocked.join(", ")),
                );
                return None;
            } else {
                st.done = true;
                self.cv.notify_all();
                return None;
            }
        }
        let step = st.step;
        if step >= st.max_steps {
            self.fail(
                st,
                FailureKind::TooManySteps,
                format!(
                    "schedule exceeded {} steps — unbounded spin in the model? \
                     (bound retries and racecheck-yield between poll attempts)",
                    st.max_steps
                ),
            );
            return None;
        }
        let chosen = if let Some(&want) = st.prefix.get(step) {
            if !enabled.contains(&want) {
                let msg = format!(
                    "replay diverged at step {step}: prefix wants t{want}, enabled {enabled:?}"
                );
                self.fail(st, FailureKind::Nondeterminism, msg);
                return None;
            }
            want
        } else {
            match &mut st.policy {
                Policy::Deterministic => {
                    if enabled.contains(&prev) {
                        prev
                    } else {
                        enabled[0]
                    }
                }
                Policy::Random { state } => {
                    let i = (xorshift(state) % enabled.len() as u64) as usize;
                    enabled[i]
                }
            }
        };
        st.choices.push(Choice {
            enabled,
            chosen,
            prev,
        });
        st.step += 1;
        st.current = chosen;
        st.granted[chosen] = true;
        Some(chosen)
    }

    /// Blocks until this thread holds an unconsumed grant, consuming it.
    /// If this thread is the token holder at a fresh op boundary (its
    /// previous grant consumed, nothing outstanding), it makes the next
    /// scheduling decision itself. Unwinds with [`AbortToken`] when the
    /// execution aborts.
    fn acquire_grant<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, ExecState>,
        tid: usize,
    ) -> std::sync::MutexGuard<'a, ExecState> {
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if st.granted[tid] {
                st.granted[tid] = false;
                return st;
            }
            if st.current == tid && st.status[tid] == Status::Runnable {
                // Fresh op boundary: this thread owns the next decision.
                match self.pick(&mut st, tid) {
                    Some(next) if next == tid => continue, // consume above
                    Some(_) => self.cv.notify_all(),
                    None => {
                        drop(st);
                        std::panic::panic_any(AbortToken);
                    }
                }
            }
            st = self
                .cv
                .wait(st)
                .expect("racecheck execution state poisoned");
        }
    }

    /// The visible-operation protocol: acquire the grant for exactly one
    /// operation, then run `apply`. `apply` returning
    /// [`ApplyOutcome::Block`] means the operation cannot proceed (mutex
    /// held, join target live) — the closure has set this thread's
    /// blocked status, the decision is handed to another thread, and
    /// `apply` retries when this thread is granted again.
    pub fn visible<R>(
        self: &Arc<Self>,
        tid: usize,
        mut apply: impl FnMut(&mut ExecState) -> ApplyOutcome<R>,
    ) -> R {
        let mut st = self.acquire_grant(self.lock(), tid);
        loop {
            match apply(&mut st) {
                ApplyOutcome::Done(r) => return r,
                ApplyOutcome::Fail(kind, msg) => {
                    self.fail(&mut st, kind, msg);
                    drop(st);
                    std::panic::panic_any(AbortToken);
                }
                ApplyOutcome::Block => {
                    // Status set by `apply`; grant someone else and
                    // retry the operation when re-granted.
                    match self.pick(&mut st, tid) {
                        Some(_) => {
                            self.cv.notify_all();
                            st = self.acquire_grant(st, tid);
                        }
                        None => {
                            drop(st);
                            std::panic::panic_any(AbortToken);
                        }
                    }
                }
            }
        }
    }

    /// Formats a race found by the engine.
    pub(crate) fn race_message(what: &str, race: &Race) -> String {
        let cur = if race.write { "write" } else { "read" };
        let prior = if race.other_write { "write" } else { "read" };
        format!(
            "data race on {what}: {cur} by t{} races with unsynchronized {prior} by t{}",
            race.tid, race.other
        )
    }

    /// Appends one event-trace line.
    pub(crate) fn trace(st: &mut ExecState, tid: usize, desc: String) {
        let step = st.step;
        st.trace.push(format!("#{step:<4} t{tid} {desc}"));
    }

    /// Spawn bookkeeping (called from within a visible op's `apply`).
    pub(crate) fn add_thread(st: &mut ExecState, parent: usize) -> usize {
        let child = st.threads.spawn(parent);
        debug_assert_eq!(child, st.status.len());
        st.status.push(Status::Runnable);
        st.granted.push(false);
        st.live += 1;
        st.os_alive += 1;
        child
    }

    /// Thread exit — a visible operation: the exiting thread acquires a
    /// grant like any op, flips to `Finished`, wakes joiners, and makes
    /// the next decision. Never unwinds: it runs after the wrapper's
    /// `catch_unwind`.
    pub fn thread_exit(self: &Arc<Self>, tid: usize) {
        let mut st = self.lock();
        loop {
            if st.abort {
                // The run is being torn down; the explorer only waits on
                // os_alive, so no status bookkeeping is needed.
                return;
            }
            if st.granted[tid] {
                st.granted[tid] = false;
                break;
            }
            if st.current == tid && st.status[tid] == Status::Runnable {
                match self.pick(&mut st, tid) {
                    Some(next) if next == tid => continue,
                    Some(_) => self.cv.notify_all(),
                    None => return, // execution ended under us
                }
            }
            st = self
                .cv
                .wait(st)
                .expect("racecheck execution state poisoned");
        }
        st.status[tid] = Status::Finished;
        st.live -= 1;
        for t in 0..st.status.len() {
            if st.status[t] == Status::JoinWait(tid) {
                st.status[t] = Status::Runnable;
            }
        }
        Execution::trace(&mut st, tid, "exit".to_string());
        let _ = self.pick(&mut st, tid);
        self.cv.notify_all();
    }

    /// Waits until the execution completed (or aborted) and every model
    /// OS thread exited; returns the failure, the recorded decisions and
    /// the event trace. `watchdog_polls` bounds the wait in ~100 ms
    /// ticks before force-aborting a hung run.
    pub fn finish(&self, watchdog_polls: u32) -> (Option<Failure>, Vec<Choice>, Vec<String>) {
        let mut st = self.lock();
        let mut polls = 0u32;
        loop {
            if (st.done || st.abort) && st.os_alive == 0 {
                break;
            }
            let (g, timeout) = self
                .cv
                .wait_timeout(st, std::time::Duration::from_millis(100))
                .expect("racecheck execution state poisoned");
            st = g;
            if timeout.timed_out() {
                polls += 1;
                if polls == watchdog_polls && !(st.done || st.abort) {
                    self.fail(
                        &mut st,
                        FailureKind::TooManySteps,
                        "execution hung: a model thread stopped reaching visible operations"
                            .to_string(),
                    );
                }
                if polls >= 2 * watchdog_polls {
                    // OS threads refuse to die — stop waiting; the leaked
                    // Arc keeps their state alive so they fault nothing.
                    break;
                }
            }
        }
        (
            st.failure.clone(),
            std::mem::take(&mut st.choices),
            std::mem::take(&mut st.trace),
        )
    }
}

/// Result of applying one visible operation.
pub(crate) enum ApplyOutcome<R> {
    Done(R),
    /// The op cannot proceed; the apply closure has set the thread's
    /// blocked status.
    Block,
    Fail(FailureKind, String),
}
