//! Schedule exploration: depth-first enumeration of interleavings with a
//! preemption bound, plus a seeded-random fallback for models whose
//! schedule trees exceed the exhaustive budget.
//!
//! Each run replays a *prefix* of scheduling decisions and continues
//! deterministically (prefer-current, then lowest thread id). The
//! recorded decisions form a path through the schedule tree; DFS
//! backtracks to the deepest decision with an untried alternative whose
//! preemption count stays within bound, extends the prefix, and reruns.
//! Determinism of replay is checked on every run — a model that makes
//! different choices available on the same prefix is reported as
//! [`FailureKind::Nondeterminism`] instead of silently exploring a
//! different tree.

use std::sync::Arc;

use super::exec::{Choice, Execution, Failure, FailureKind, Policy};
use super::{clear_ctx, thread::run_thread};

/// Exploration budget and bounds.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum preemptive context switches per schedule (`None` =
    /// unbounded). Two preemptions catch the vast majority of real
    /// concurrency bugs while keeping the tree tractable.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules; hitting it marks the report
    /// incomplete instead of failing.
    pub max_schedules: usize,
    /// Per-schedule step budget (visible operations) before the run is
    /// declared a livelock.
    pub max_steps: usize,
    /// Watchdog patience in ~100 ms ticks for a wedged run.
    pub watchdog_polls: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: Some(2),
            max_schedules: 20_000,
            max_steps: 2_000,
            watchdog_polls: 50,
        }
    }
}

impl Config {
    pub fn new() -> Config {
        Config::default()
    }

    pub fn preemption_bound(mut self, bound: Option<usize>) -> Config {
        self.preemption_bound = bound;
        self
    }

    pub fn max_schedules(mut self, n: usize) -> Config {
        self.max_schedules = n;
        self
    }

    pub fn max_steps(mut self, n: usize) -> Config {
        self.max_steps = n;
        self
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Schedules actually executed.
    pub schedules: usize,
    /// True when the bounded tree was exhausted (no schedule budget cut).
    pub complete: bool,
    /// First failing schedule found, if any.
    pub failure: Option<Failure>,
    /// FNV-1a digest over every executed schedule, in order — two
    /// explorations of the same model with the same config must agree.
    pub digest: u64,
}

/// One decision point on the DFS stack.
struct Frame {
    /// Enabled threads at this decision (ascending).
    enabled: Vec<usize>,
    /// Token holder at this decision.
    prev: usize,
    /// Preemptions consumed by the prefix *before* this decision.
    preempts_before: usize,
    /// Exploration order: the default choice first, then the remaining
    /// enabled threads ascending.
    order: Vec<usize>,
    /// Index into `order` of the choice taken on the most recent run.
    idx: usize,
}

fn fnv_mix(mut digest: u64, schedule: &[usize]) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    for &t in schedule {
        digest ^= t as u64 + 1;
        digest = digest.wrapping_mul(PRIME);
    }
    digest ^= 0xff;
    digest.wrapping_mul(PRIME)
}

/// Installs (once per process) a panic hook that silences [`AbortToken`]
/// unwinds — they are control flow, not failures — and chains every
/// other payload to the previously installed hook.
fn install_quiet_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<super::exec::AbortToken>()
                .is_some()
            {
                return;
            }
            prev(info);
        }));
    });
}

/// Runs the model closure once under the given schedule prefix; returns
/// the failure (if any) and the full decision list.
fn run_once(
    cfg: &Config,
    prefix: Vec<usize>,
    policy: Policy,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> (Option<Failure>, Vec<Choice>) {
    install_quiet_hook();
    let exec = Execution::new(prefix, policy, cfg.max_steps);
    let exec2 = Arc::clone(&exec);
    let f = Arc::clone(f);
    let root = std::thread::Builder::new()
        .name("racecheck-t0".to_string())
        .spawn(move || {
            let slot = Arc::new(std::sync::Mutex::new(None));
            run_thread(exec2, 0, move || f(), slot);
        })
        .expect("racecheck failed to spawn the root model thread");
    let (failure, choices, _trace) = exec.finish(cfg.watchdog_polls);
    // The root wrapper exits promptly once the run is done or aborted.
    let _ = root.join();
    clear_ctx();
    (failure, choices)
}

/// Counts the preemptions in `choices[..upto]`.
fn preempts_upto(choices: &[Choice], upto: usize) -> usize {
    choices[..upto].iter().filter(|c| c.is_preemption()).count()
}

/// Exhaustive bounded DFS over schedules of `f`. Stops at the first
/// failure, the schedule budget, or tree exhaustion.
pub fn explore(cfg: Config, f: impl Fn() + Send + Sync + 'static) -> Report {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut stack: Vec<Frame> = Vec::new();
    let mut schedules = 0usize;
    let mut digest = 0xcbf29ce484222325u64; // FNV offset basis
    loop {
        let prefix: Vec<usize> = stack.iter().map(|fr| fr.order[fr.idx]).collect();
        let (failure, choices) = run_once(&cfg, prefix, Policy::Deterministic, &f);
        schedules += 1;
        let schedule: Vec<usize> = choices.iter().map(|c| c.chosen).collect();
        digest = fnv_mix(digest, &schedule);
        if let Some(failure) = failure {
            return Report {
                schedules,
                complete: false,
                failure: Some(failure),
                digest,
            };
        }
        // Replay-consistency check: the recorded decisions must agree
        // with the stack frames that produced the prefix.
        if choices.len() < stack.len() {
            return Report {
                schedules,
                complete: false,
                failure: Some(Failure {
                    kind: FailureKind::Nondeterminism,
                    message: format!(
                        "replay ended after {} decisions but the prefix has {} — \
                         model behaviour must depend only on the schedule",
                        choices.len(),
                        stack.len()
                    ),
                    schedule,
                    trace: Vec::new(),
                }),
                digest,
            };
        }
        for (i, fr) in stack.iter().enumerate() {
            let c = &choices[i];
            if c.enabled != fr.enabled || c.prev != fr.prev {
                return Report {
                    schedules,
                    complete: false,
                    failure: Some(Failure {
                        kind: FailureKind::Nondeterminism,
                        message: format!(
                            "enabled set diverged on replay at step {i}: \
                             recorded {:?} (prev t{}), replayed {:?} (prev t{}) — \
                             model behaviour must depend only on the schedule",
                            fr.enabled, fr.prev, c.enabled, c.prev
                        ),
                        schedule,
                        trace: Vec::new(),
                    }),
                    digest,
                };
            }
        }
        // Extend the stack with the decisions made beyond the prefix.
        for i in stack.len()..choices.len() {
            let c = &choices[i];
            let mut order = vec![c.chosen];
            order.extend(c.enabled.iter().copied().filter(|&t| t != c.chosen));
            stack.push(Frame {
                enabled: c.enabled.clone(),
                prev: c.prev,
                preempts_before: preempts_upto(&choices, i),
                order,
                idx: 0,
            });
        }
        if schedules >= cfg.max_schedules {
            return Report {
                schedules,
                complete: false,
                failure: None,
                digest,
            };
        }
        // Backtrack to the deepest frame with an in-bound alternative.
        let advanced = loop {
            let Some(fr) = stack.last_mut() else {
                break false;
            };
            let mut next = fr.idx + 1;
            if let Some(bound) = cfg.preemption_bound {
                // Skip alternatives that would blow the preemption bound.
                while next < fr.order.len() {
                    let chosen = fr.order[next];
                    let preempts = fr.preempts_before
                        + usize::from(chosen != fr.prev && fr.enabled.contains(&fr.prev));
                    if preempts <= bound {
                        break;
                    }
                    next += 1;
                }
            }
            if next < fr.order.len() {
                fr.idx = next;
                break true;
            }
            stack.pop();
        };
        if !advanced {
            return Report {
                schedules,
                complete: true,
                failure: None,
                digest,
            };
        }
    }
}

/// Randomized exploration: `iters` runs with seeded xorshift scheduling.
/// Complements [`explore`] for models whose bounded tree is too large.
pub fn explore_random(
    cfg: Config,
    seed: u64,
    iters: usize,
    f: impl Fn() + Send + Sync + 'static,
) -> Report {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut schedules = 0usize;
    let mut digest = 0xcbf29ce484222325u64;
    for i in 0..iters {
        // Mix the iteration index in; xorshift must never be seeded 0.
        let state = (seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15)) | 1;
        let (failure, choices) = run_once(&cfg, Vec::new(), Policy::Random { state }, &f);
        schedules += 1;
        let schedule: Vec<usize> = choices.iter().map(|c| c.chosen).collect();
        digest = fnv_mix(digest, &schedule);
        if let Some(failure) = failure {
            return Report {
                schedules,
                complete: false,
                failure: Some(failure),
                digest,
            };
        }
    }
    Report {
        schedules,
        complete: false,
        failure: None,
        digest,
    }
}

/// Asserts the model is clean under bounded exhaustive exploration;
/// panics with the failing schedule and trace otherwise.
pub fn check(name: &str, cfg: Config, f: impl Fn() + Send + Sync + 'static) {
    let report = explore(cfg, f);
    if let Some(failure) = report.failure {
        panic!(
            "model `{name}` failed after {} schedules:\n{failure}",
            report.schedules
        );
    }
}

/// Asserts the model *fails* — the regression direction: a seeded-buggy
/// variant must be caught. Returns the failure for kind assertions;
/// panics if exploration comes back clean.
pub fn check_race(name: &str, cfg: Config, f: impl Fn() + Send + Sync + 'static) -> Failure {
    let report = explore(cfg, f);
    match report.failure {
        Some(failure) => failure,
        None => panic!(
            "model `{name}` explored {} schedules (complete: {}) without finding \
             the expected failure",
            report.schedules, report.complete
        ),
    }
}
