//! racecheck — a loom-style concurrency checker for the flatstore
//! workspace, with a zero-cost `std::sync` facade.
//!
//! The crate has two halves:
//!
//! * [`sync`] is what production crates import instead of `std::sync`.
//!   By default every name is a plain re-export of the `std` type —
//!   same types, zero overhead, nothing to audit in release artifacts.
//!   Compiling with `RUSTFLAGS="--cfg racecheck"` swaps the facade to
//!   the checked model types below.
//! * [`model`] (always compiled, no cfg needed) is the checker itself:
//!   drop-in atomics/mutexes/threads whose every operation is a
//!   scheduling choice point, a cooperative scheduler that explores
//!   interleavings (bounded-exhaustive DFS via [`model::explore`],
//!   seeded random via [`model::explore_random`]), and a vector-clock
//!   happens-before [`engine`] that reports data races, missing
//!   release/acquire edges, and deadlocks with per-thread event traces.
//!
//! Protocol models live in `tests/models.rs`: extracted versions of the
//! flatrpc ring publish/consume, the completion-gate dual-atomic
//! handshake, the shard deferred-key FIFO, client-port park/reuse, and
//! the cache fill-vs-invalidate ordering — each asserted under every
//! explored schedule, with seeded-buggy variants proving the checker
//! actually catches the bug class it exists for.
//!
//! ```
//! use racecheck::model::{self, thread, RaceCell};
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! // A Release publish / Acquire consume handshake is clean:
//! model::check("publish", model::Config::new(), || {
//!     let data = Arc::new(RaceCell::named("data", 0u64));
//!     let flag = Arc::new(model::AtomicU64::named("flag", 0));
//!     let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
//!     let t = thread::spawn(move || {
//!         d.write(42);
//!         f.store(1, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(data.read(), 42);
//!     }
//!     t.join().unwrap();
//! });
//! ```

pub mod engine;
pub mod model;
pub mod sync;
pub mod vc;
