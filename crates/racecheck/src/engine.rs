//! The happens-before engine: per-thread vector clocks advanced by
//! synchronization operations, plus per-location access metadata that
//! turns "no happens-before path" into a reported data race.
//!
//! This module is pure state machinery — no threads, no scheduler. The
//! cooperative scheduler in [`crate::model`] feeds it one operation at a
//! time from whichever model thread holds the token; the property tests
//! feed it synthetic event DAGs directly and cross-check its verdicts
//! against graph reachability.
//!
//! # Memory-model coverage
//!
//! * `Release` stores publish the writer's clock as the *message clock*
//!   of the stored value; `Acquire` loads join it. A `Relaxed` store
//!   replaces the message clock with the writer's release-fence clock
//!   (empty without one) — so a `Relaxed` publish genuinely fails to
//!   carry the writer's history, which is exactly how a missing
//!   `Release` edge surfaces as a data race on the payload.
//! * Read-modify-writes continue the release sequence: their message
//!   clock joins the previous one, so a `Relaxed` RMW in the middle of a
//!   release chain (stat bump on a published counter) doesn't sever it.
//! * `SeqCst` is modelled as `AcqRel` on the location. The global SC
//!   total order adds no happens-before edges between different
//!   locations, so this is the sound (never hides a race) direction of
//!   approximation; algorithms that *need* the SC order (Dekker-style
//!   mutual exclusion through fences) may report false races here.
//! * Fences: an `Acquire` fence upgrades every earlier `Relaxed` load of
//!   the thread (their message clocks accumulate in
//!   [`ThreadState::pending_acquire`]); a `Release` fence snapshots the
//!   thread clock so later `Relaxed` stores publish it.

use crate::vc::VectorClock;
use std::sync::atomic::Ordering;

/// Per-thread happens-before state.
#[derive(Debug, Clone, Default)]
pub struct ThreadState {
    /// The thread's own clock: everything that happens-before its next op.
    pub clock: VectorClock,
    /// Message clocks of `Relaxed` loads since the last `Acquire` fence —
    /// joined into [`Self::clock`] when such a fence executes.
    pub pending_acquire: VectorClock,
    /// Thread clock as of the last `Release` fence, published by
    /// subsequent `Relaxed` stores. `None` until the first release fence.
    pub release_fence: Option<VectorClock>,
}

/// One atomic location: current value plus the message clock attached to
/// the value by its last store.
#[derive(Debug, Clone, Default)]
pub struct AtomicState {
    pub value: u64,
    pub msg: VectorClock,
}

/// One mutex: the clock released by the last unlock.
#[derive(Debug, Clone, Default)]
pub struct MutexState {
    pub clock: VectorClock,
}

/// One plain-memory location (a [`RaceCell`](crate::model::RaceCell)):
/// last-write times and last-read times per thread.
#[derive(Debug, Clone, Default)]
pub struct CellState {
    /// Component `t` = time of thread `t`'s last write to this location.
    pub writes: VectorClock,
    /// Component `t` = time of thread `t`'s last read of this location.
    pub reads: VectorClock,
    /// Thread id of the most recent write (trace decoration only).
    pub last_writer: Option<usize>,
}

/// A detected conflict: the current access and the prior thread whose
/// access it races with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Thread performing the access that exposed the race.
    pub tid: usize,
    /// Thread with a conflicting earlier access not ordered before it.
    pub other: usize,
    /// True when the *current* access is a write.
    pub write: bool,
    /// True when the *prior* conflicting access is a write.
    pub other_write: bool,
}

/// Vector clocks for every model thread plus spawn/join edges.
#[derive(Debug, Clone, Default)]
pub struct Threads {
    pub threads: Vec<ThreadState>,
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Threads {
    /// Registers thread 0 (the model's root).
    pub fn root() -> Threads {
        let mut t = Threads::default();
        let mut root = ThreadState::default();
        root.clock.incr(0);
        t.threads.push(root);
        t
    }

    /// Spawns a child of `parent`: the child starts knowing everything
    /// the parent knows, and the parent's clock advances so later parent
    /// events are not covered by the child's initial knowledge.
    pub fn spawn(&mut self, parent: usize) -> usize {
        let child = self.threads.len();
        let mut st = ThreadState {
            clock: self.threads[parent].clock.clone(),
            ..ThreadState::default()
        };
        st.clock.incr(child);
        self.threads.push(st);
        self.threads[parent].clock.incr(parent);
        child
    }

    /// Joins `child` into `parent`: the parent learns everything the
    /// child did.
    pub fn join(&mut self, parent: usize, child: usize) {
        let ck = self.threads[child].clock.clone();
        self.threads[parent].clock.join(&ck);
    }

    /// Atomic load of `a` by `tid` with ordering `o`; returns the value.
    pub fn atomic_load(&mut self, tid: usize, a: &mut AtomicState, o: Ordering) -> u64 {
        let th = &mut self.threads[tid];
        if is_acquire(o) {
            th.clock.join(&a.msg);
        } else {
            th.pending_acquire.join(&a.msg);
        }
        a.value
    }

    /// Atomic store to `a` by `tid` with ordering `o`.
    pub fn atomic_store(&mut self, tid: usize, a: &mut AtomicState, value: u64, o: Ordering) {
        let th = &mut self.threads[tid];
        if is_release(o) {
            a.msg = th.clock.clone();
            th.clock.incr(tid);
        } else {
            // A Relaxed store REPLACES the message clock: readers of this
            // value synchronize with (at most) the thread's last release
            // fence, not with the store itself.
            a.msg = th.release_fence.clone().unwrap_or_default();
        }
        a.value = value;
    }

    /// Atomic read-modify-write: load side then store side, with the new
    /// message clock *joining* the old one (release-sequence continuation).
    pub fn atomic_rmw(
        &mut self,
        tid: usize,
        a: &mut AtomicState,
        new_value: u64,
        o: Ordering,
    ) -> u64 {
        let old = a.value;
        let th = &mut self.threads[tid];
        if is_acquire(o) {
            th.clock.join(&a.msg);
        } else {
            th.pending_acquire.join(&a.msg);
        }
        let mut msg = a.msg.clone();
        if is_release(o) {
            msg.join(&th.clock);
            th.clock.incr(tid);
        } else if let Some(fc) = &th.release_fence {
            msg.join(fc);
        }
        a.msg = msg;
        a.value = new_value;
        old
    }

    /// Mutex acquire edge (the scheduler has already decided the lock is
    /// free).
    pub fn mutex_lock(&mut self, tid: usize, m: &mut MutexState) {
        self.threads[tid].clock.join(&m.clock);
    }

    /// Mutex release edge.
    pub fn mutex_unlock(&mut self, tid: usize, m: &mut MutexState) {
        let th = &mut self.threads[tid];
        m.clock = th.clock.clone();
        th.clock.incr(tid);
    }

    /// A memory fence with ordering `o`.
    pub fn fence(&mut self, tid: usize, o: Ordering) {
        let th = &mut self.threads[tid];
        if is_acquire(o) {
            let pending = std::mem::take(&mut th.pending_acquire);
            th.clock.join(&pending);
        }
        if is_release(o) {
            th.release_fence = Some(th.clock.clone());
        }
    }

    /// Plain-memory read of `c` by `tid`; reports a race against an
    /// unordered earlier write. State is updated even on a race so
    /// exploration can continue past the first report.
    pub fn cell_read(&mut self, tid: usize, c: &mut CellState) -> Result<(), Race> {
        let th = &self.threads[tid];
        let mut verdict = Ok(());
        for other in 0..c.writes.len() {
            if other != tid && c.writes.get(other) > th.clock.get(other) {
                verdict = Err(Race {
                    tid,
                    other,
                    write: false,
                    other_write: true,
                });
                break;
            }
        }
        let t = th.clock.get(tid);
        c.reads.set(tid, t.max(c.reads.get(tid)));
        verdict
    }

    /// Plain-memory write of `c` by `tid`; reports a race against an
    /// unordered earlier read or write.
    pub fn cell_write(&mut self, tid: usize, c: &mut CellState) -> Result<(), Race> {
        let th = &self.threads[tid];
        let mut verdict = Ok(());
        let others = c.writes.len().max(c.reads.len());
        for other in 0..others {
            if other == tid {
                continue;
            }
            if c.writes.get(other) > th.clock.get(other) {
                verdict = Err(Race {
                    tid,
                    other,
                    write: true,
                    other_write: true,
                });
                break;
            }
            if c.reads.get(other) > th.clock.get(other) {
                verdict = Err(Race {
                    tid,
                    other,
                    write: true,
                    other_write: false,
                });
                break;
            }
        }
        let t = th.clock.get(tid);
        c.writes.set(tid, t.max(c.writes.get(tid)));
        c.last_writer = Some(tid);
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_acquire_orders_cell_accesses() {
        let mut th = Threads::root();
        let w = th.spawn(0); // writer
        let r = th.spawn(0); // reader
        let mut flag = AtomicState::default();
        let mut data = CellState::default();

        assert!(th.cell_write(w, &mut data).is_ok());
        th.atomic_store(w, &mut flag, 1, Ordering::Release);
        assert_eq!(th.atomic_load(r, &mut flag, Ordering::Acquire), 1);
        assert!(th.cell_read(r, &mut data).is_ok());
    }

    #[test]
    fn relaxed_publish_is_a_race() {
        let mut th = Threads::root();
        let w = th.spawn(0);
        let r = th.spawn(0);
        let mut flag = AtomicState::default();
        let mut data = CellState::default();

        assert!(th.cell_write(w, &mut data).is_ok());
        th.atomic_store(w, &mut flag, 1, Ordering::Relaxed);
        assert_eq!(th.atomic_load(r, &mut flag, Ordering::Acquire), 1);
        let race = th.cell_read(r, &mut data).unwrap_err();
        assert_eq!((race.tid, race.other, race.other_write), (r, w, true));
    }

    #[test]
    fn fences_upgrade_relaxed_accesses() {
        let mut th = Threads::root();
        let w = th.spawn(0);
        let r = th.spawn(0);
        let mut flag = AtomicState::default();
        let mut data = CellState::default();

        assert!(th.cell_write(w, &mut data).is_ok());
        th.fence(w, Ordering::Release);
        th.atomic_store(w, &mut flag, 1, Ordering::Relaxed);

        assert_eq!(th.atomic_load(r, &mut flag, Ordering::Relaxed), 1);
        th.fence(r, Ordering::Acquire);
        assert!(th.cell_read(r, &mut data).is_ok());
    }

    #[test]
    fn rmw_continues_the_release_sequence() {
        let mut th = Threads::root();
        let w = th.spawn(0);
        let bump = th.spawn(0);
        let r = th.spawn(0);
        let mut flag = AtomicState::default();
        let mut data = CellState::default();

        assert!(th.cell_write(w, &mut data).is_ok());
        th.atomic_store(w, &mut flag, 1, Ordering::Release);
        // A relaxed RMW by a third thread must not sever w's release edge.
        th.atomic_rmw(bump, &mut flag, 2, Ordering::Relaxed);
        assert_eq!(th.atomic_load(r, &mut flag, Ordering::Acquire), 2);
        assert!(th.cell_read(r, &mut data).is_ok());
    }

    #[test]
    fn mutex_orders_and_join_orders() {
        let mut th = Threads::root();
        let a = th.spawn(0);
        let mut m = MutexState::default();
        let mut data = CellState::default();

        th.mutex_lock(a, &mut m);
        assert!(th.cell_write(a, &mut data).is_ok());
        th.mutex_unlock(a, &mut m);

        let b = th.spawn(0);
        th.mutex_lock(b, &mut m);
        assert!(th.cell_read(b, &mut data).is_ok());
        th.mutex_unlock(b, &mut m);

        th.join(0, a);
        th.join(0, b);
        assert!(th.cell_write(0, &mut data).is_ok());
    }
}
