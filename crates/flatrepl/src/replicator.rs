//! The primary's side of log shipping: the [`flatstore::ReplicationSink`]
//! implementation and its observability.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use flatrpc::{clock, ClientPort, Envelope};
use flatstore::{ReplOp, ReplicationSink};
use obs::{Counter, LogHistogram};
use pmem::PmAddr;

/// One shipped batch: everything the backup needs to reproduce the
/// primary's append durably, self-contained (pointer payloads already
/// resolved to bytes by the engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipBatch {
    /// The primary core whose log this batch extends.
    pub core: usize,
    /// Per-core ship sequence number (1-based, monotonic).
    pub seq: u64,
    /// The primary's log tail after this batch — persisted by the backup
    /// as its catch-up cursor into the primary's log.
    pub tail: PmAddr,
    /// The operations, in log order.
    pub ops: Vec<ReplOp>,
}

/// The backup's acknowledgment: batch `seq` of `core` is durably applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipAck {
    /// The primary core acknowledged.
    pub core: usize,
    /// The acknowledged ship sequence number.
    pub seq: u64,
}

/// Replication counters and distributions, reported through [`obs`].
#[derive(Debug, Default)]
pub struct ReplStats {
    /// Batches shipped on the fast path.
    pub ship_batches: Counter,
    /// Operations those batches carried.
    pub shipped_entries: Counter,
    /// Batches re-shipped by [`catch_up`](crate::catch_up).
    pub catch_up_batches: Counter,
    /// Operations catch-up re-shipped.
    pub catch_up_entries: Counter,
    /// Operations per shipped batch (the amortization lever: one message
    /// per batch, so bigger batches mean fewer messages per op).
    pub ship_batch_size: LogHistogram,
    /// Shipped-but-unacked batches outstanding at each ship (replication
    /// lag in batches; bounded by the ring capacity).
    pub ship_lag: LogHistogram,
    /// Ship-to-ack round trip per batch, in nanoseconds: from the moment
    /// the batch envelope is enqueued to the moment its ack is drained.
    /// Observed lazily — acks are only drained when someone ships or
    /// polls the watermark — so it upper-bounds the backup's true apply
    /// latency (the causal-tracing `repl_ack_wait` stage measures what a
    /// *client* actually waited, which can be shorter).
    pub ack_latency: LogHistogram,
}

impl ReplStats {
    /// Adds a `replication` section to `r`.
    pub fn fill_report(&self, r: &mut obs::StatsReport) {
        let batches = self.ship_batches.get();
        let entries = self.shipped_entries.get();
        let sec = r.section("replication");
        sec.row("ship_batches", batches)
            .row("shipped_entries", entries)
            .row("catch_up_batches", self.catch_up_batches.get())
            .row("catch_up_entries", self.catch_up_entries.get());
        if batches > 0 {
            sec.row("avg_ship_batch", entries as f64 / batches as f64);
        }
        if !self.ship_lag.is_empty() {
            let s = self.ship_lag.snapshot();
            sec.row("ship_lag_p50", s.p50())
                .row("ship_lag_p99", s.p99());
        }
        sec.latency_rows("ack_latency", &self.ack_latency.snapshot());
    }
}

/// One primary core's shipping endpoint. The port is owned by that core's
/// worker while shipping, but any core polling a completion may need the
/// ack watermark, so the port sits behind a mutex and the watermark is a
/// plain atomic readable without it.
struct CoreChannel {
    port: parking_lot::Mutex<ClientPort<Envelope<ShipBatch>, Envelope<ShipAck>>>,
    shipped: AtomicU64,
    acked: AtomicU64,
    /// Ship timestamps of unacked batches, oldest first: `(seq, ship_ns)`.
    /// Guarded by its own lock so the watermark poller (which may only
    /// `try_lock` the port) can still retire entries it drained.
    in_flight: parking_lot::Mutex<VecDeque<(u64, u64)>>,
}

impl CoreChannel {
    /// Drains pending acks from this channel's response ring into the
    /// watermark. Caller holds (or just acquired) the port lock.
    fn drain_acks(
        &self,
        port: &ClientPort<Envelope<ShipBatch>, Envelope<ShipAck>>,
        ack_latency: &LogHistogram,
    ) {
        let mut drained = 0u64;
        while let Some(env) = port.try_recv() {
            // Acks arrive in ship order per core; fetch_max tolerates an
            // out-of-order drain race between two observers anyway.
            self.acked.fetch_max(env.body.seq, Ordering::AcqRel);
            drained = drained.max(env.body.seq);
        }
        if drained > 0 {
            let now = clock::now_ns();
            let mut q = self.in_flight.lock();
            while q.front().is_some_and(|&(seq, _)| seq <= drained) {
                let (_, ship_ns) = q.pop_front().expect("front checked");
                ack_latency.record(now.saturating_sub(ship_ns));
            }
        }
    }
}

/// The engine-facing sink: ships each persisted batch as one envelope and
/// tracks the backup's acked watermark per core.
pub struct Replicator {
    cores: Vec<CoreChannel>,
    stats: ReplStats,
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("ncores", &self.cores.len())
            .finish()
    }
}

impl Replicator {
    /// Builds a replicator over one shipping port per primary core (port
    /// `i` carries core `i`'s batches).
    pub(crate) fn new(
        ports: Vec<ClientPort<Envelope<ShipBatch>, Envelope<ShipAck>>>,
    ) -> Replicator {
        Replicator {
            cores: ports
                .into_iter()
                .map(|port| CoreChannel {
                    port: parking_lot::Mutex::new(port),
                    shipped: AtomicU64::new(0),
                    acked: AtomicU64::new(0),
                    in_flight: parking_lot::Mutex::new(VecDeque::new()),
                })
                .collect(),
            stats: ReplStats::default(),
        }
    }

    /// Replication counters.
    pub fn stats(&self) -> &ReplStats {
        &self.stats
    }

    /// Highest ship sequence assigned on `core`.
    pub fn shipped(&self, core: usize) -> u64 {
        self.cores[core].shipped.load(Ordering::Acquire)
    }
}

impl ReplicationSink for Replicator {
    fn ship(&self, core: usize, ops: Vec<ReplOp>, tail: PmAddr) -> u64 {
        let ch = &self.cores[core];
        let port = ch.port.lock();
        let seq = ch.shipped.fetch_add(1, Ordering::AcqRel) + 1;
        self.stats.ship_batches.inc();
        self.stats.shipped_entries.add(ops.len() as u64);
        self.stats.ship_batch_size.record(ops.len() as u64);
        self.stats
            .ship_lag
            .record(seq.saturating_sub(ch.acked.load(Ordering::Acquire)));
        let mut env = Envelope::new(
            seq,
            ShipBatch {
                core,
                seq,
                tail,
                ops,
            },
        );
        ch.in_flight.lock().push_back((seq, clock::now_ns()));
        // Pipelined send: enqueue and return; ring-full means the backup is
        // lagging a full ring behind — drain its acks and retry (the
        // fabric's send_backpressure counter records each rejection).
        loop {
            match port.send(0, env) {
                Ok(()) => break,
                Err(e) => {
                    env = e;
                    ch.drain_acks(&port, &self.stats.ack_latency);
                    std::hint::spin_loop();
                }
            }
        }
        seq
    }

    fn acked(&self, core: usize) -> u64 {
        let ch = &self.cores[core];
        // Only one observer needs to drain; if the shipper holds the port,
        // it drains on our behalf the moment it hits backpressure, and the
        // watermark below is still monotonic.
        if let Some(port) = ch.port.try_lock() {
            ch.drain_acks(&port, &self.stats.ack_latency);
        }
        ch.acked.load(Ordering::Acquire)
    }
}
