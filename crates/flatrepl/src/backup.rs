//! The passive replica: an applier thread over a [`flatstore::BackupImage`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use flatrpc::Envelope;
use flatstore::{BackupImage, Config, FlatStore, StoreError};
use pmem::PmRegion;

use crate::{ShipAck, ShipFabric};

/// A running backup: one applier thread draining the shipping fabric into
/// the image's persistent per-core logs.
///
/// Each shipped batch is applied with the primary's own durability
/// protocol (out-of-line records, one fence, one batched log append whose
/// tail persist is the commit point), then the per-core ship cursor is
/// durably advanced, and only then is the ack sent — so an acked batch
/// survives a backup crash, which is exactly what lets the primary release
/// client acknowledgments against the watermark.
pub struct Backup {
    image: Arc<BackupImage>,
    stop: Arc<AtomicBool>,
    applier: Option<JoinHandle<Result<(), StoreError>>>,
}

impl std::fmt::Debug for Backup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backup")
            .field("ncores", &self.image.ncores())
            .finish()
    }
}

impl Backup {
    /// Formats a fresh backup image per `cfg` and starts its applier as
    /// the fabric's single server core (the agent, so acks complete
    /// directly without a delegation hop).
    pub(crate) fn start(cfg: &Config, fabric: &ShipFabric) -> Result<Backup, StoreError> {
        let image = Arc::new(BackupImage::format(cfg)?);
        let stop = Arc::new(AtomicBool::new(false));
        let mut core = fabric.server_cores().remove(0);
        let thread_image = Arc::clone(&image);
        let thread_stop = Arc::clone(&stop);
        let applier = std::thread::Builder::new()
            .name("flatrepl-backup".into())
            .spawn(move || {
                let mut idle = 0u32;
                loop {
                    match core.poll() {
                        Some((client, env)) => {
                            idle = 0;
                            let batch = env.body;
                            // Apply durably, advance the cursor durably,
                            // only then ack. A failed apply (backup pool
                            // exhausted) stops acking: the primary stalls
                            // at the watermark instead of lying to clients.
                            thread_image.apply(batch.core, &batch.ops)?;
                            thread_image.set_ship_cursor(batch.core, batch.tail);
                            core.respond(
                                client,
                                Envelope::new(
                                    env.seq,
                                    ShipAck {
                                        core: batch.core,
                                        seq: batch.seq,
                                    },
                                ),
                            );
                        }
                        None => {
                            if thread_stop.load(Ordering::Acquire) {
                                return Ok(());
                            }
                            idle += 1;
                            if idle < 64 {
                                std::hint::spin_loop();
                            } else if idle < 512 {
                                std::thread::yield_now();
                            } else {
                                std::thread::sleep(Duration::from_micros(100));
                            }
                        }
                    }
                }
            })
            // pmlint: allow(no-unwrap) — thread-spawn failure at startup is
            // unrecoverable; no shipped state exists to strand yet.
            .expect("spawn backup applier");
        Ok(Backup {
            image,
            stop,
            applier: Some(applier),
        })
    }

    /// The replica image (for catch-up and inspection).
    pub fn image(&self) -> &Arc<BackupImage> {
        &self.image
    }

    /// Stops the applier after it drains every batch already shipped, and
    /// returns the image's region.
    ///
    /// # Errors
    ///
    /// Propagates an applier failure (e.g. the backup pool filled up).
    pub fn stop(mut self) -> Result<Arc<PmRegion>, StoreError> {
        self.join()?;
        Ok(self.image.pm())
    }

    /// Promotes this backup to a standalone primary: stops the applier,
    /// then opens the image like any crashed region — the backup never
    /// sets the clean flag, so [`FlatStore::open`] takes the full log-scan
    /// path and rebuilds the index and allocator state from the shipped
    /// logs alone (paper §3.5, path 3).
    ///
    /// Volatile engine state starts fresh: in particular the hot-read
    /// cache (`Config::read_cache_bytes`) comes up empty on the promoted
    /// store, so nothing cached on the failed primary can outlive it —
    /// the first reads warm it from the recovered logs.
    ///
    /// # Errors
    ///
    /// As for [`FlatStore::open`]; applier failures surface first.
    pub fn promote(mut self, cfg: Config) -> Result<FlatStore, StoreError> {
        self.join()?;
        let pm = self.image.pm();
        drop(self);
        FlatStore::open(pm, cfg)
    }

    fn join(&mut self) -> Result<(), StoreError> {
        let Some(handle) = self.applier.take() else {
            return Ok(());
        };
        self.stop.store(true, Ordering::Release);
        handle
            .join()
            // pmlint: allow(no-unwrap) — propagate an applier panic rather
            // than pretend the replica is consistent.
            .expect("backup applier panicked")
    }
}

impl Drop for Backup {
    fn drop(&mut self) {
        let _ = self.join();
    }
}
