//! **flatrepl** — primary–backup log-shipping replication for FlatStore.
//!
//! FlatStore persists every batch of compacted log entries with a single
//! flush+fence pair (paper §3.3); this crate extends the same amortization
//! to replication, Cyclone-style: the leader that just persisted a
//! horizontal batch ships **the whole batch as one message** over a
//! dedicated FlatRPC ring, so the per-message network cost of replication
//! shrinks with batch size exactly like the per-batch media cost does.
//!
//! # Roles
//!
//! * [`Replicator`] implements [`flatstore::ReplicationSink`]: the engine
//!   calls `ship` once per persisted batch; the batch travels as one
//!   envelope on the shipping fabric; acknowledgments raise a per-core
//!   watermark that the engine's completion path gates client acks on. An
//!   operation is acknowledged to the client only once it is durable
//!   locally **and** durable on the backup.
//! * [`Backup`] runs the passive replica: an applier thread appends each
//!   shipped batch into the backup's own persistent per-core logs (its
//!   durability point is the same batched tail-persist the primary uses)
//!   and durably advances a per-core ship cursor before acking.
//! * [`ReplicatedStore`] wires both ends over an in-process fabric and
//!   adds **failover** ([`ReplicatedStore::fail_primary`] +
//!   [`Backup::promote`] — promotion is FlatStore's ordinary full-scan
//!   crash recovery over the backup image) and **catch-up**
//!   ([`catch_up`] — a rejoining replica receives only the log suffix
//!   past its persisted cursor).
//!
//! # Quickstart
//!
//! ```
//! use flatrepl::ReplicatedStore;
//! use flatstore::Config;
//!
//! let cfg = Config::builder()
//!     .pm_bytes(64 << 20)
//!     .ncores(2)
//!     .group_size(2)
//!     .build()?;
//! let store = ReplicatedStore::create(cfg.clone())?;
//! store.put(1, b"replicated")?; // acked only once durable on BOTH nodes
//!
//! // Fail the primary; promote the backup via ordinary crash recovery.
//! let (_dead_primary, backup) = store.fail_primary();
//! let promoted = backup.promote(cfg)?;
//! assert_eq!(promoted.get(1)?.as_deref(), Some(&b"replicated"[..]));
//! promoted.shutdown()?;
//! # Ok::<(), flatstore::StoreError>(())
//! ```

mod backup;
mod replicator;
mod store;

pub use backup::Backup;
pub use replicator::{ReplStats, Replicator, ShipAck, ShipBatch};
pub use store::{catch_up, ReplicatedStore};

/// The shipping fabric: one server core (the backup applier), one client
/// port per primary core, batch envelopes out, ack envelopes back.
pub(crate) type ShipFabric =
    flatrpc::Fabric<flatrpc::Envelope<ShipBatch>, flatrpc::Envelope<ShipAck>>;
