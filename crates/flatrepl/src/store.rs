//! The replicated pair: a primary engine gated on a backup's watermark,
//! plus failover and catch-up.

use std::sync::Arc;

use flatstore::{BackupImage, Config, FlatStore, StoreError, StoreHandle};
use pmem::PmRegion;

use crate::backup::Backup;
use crate::replicator::{ReplStats, Replicator};
use crate::ShipFabric;

/// Batches a catch-up re-ship applies at a time: mirrors the fast path
/// (one durable append per batch) without building one giant batch that
/// would overflow a log chunk.
const CATCH_UP_BATCH: usize = 64;

/// A primary [`FlatStore`] paired with one passive [`Backup`] over an
/// in-process shipping fabric. Every operation acknowledged through this
/// handle is durable on **both** nodes (see the crate docs).
pub struct ReplicatedStore {
    // Field order is drop order: the primary drains first (its shards spin
    // until the watermark covers their in-flight batches), and only then
    // may the backup's applier stop.
    primary: FlatStore,
    replicator: Arc<Replicator>,
    backup: Backup,
}

impl std::fmt::Debug for ReplicatedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedStore")
            .field("primary", &self.primary)
            .field("backup", &self.backup)
            .finish()
    }
}

impl ReplicatedStore {
    /// Creates a fresh primary and a fresh backup from the same `cfg`.
    ///
    /// # Errors
    ///
    /// As for [`FlatStore::create`].
    pub fn create(cfg: Config) -> Result<ReplicatedStore, StoreError> {
        Self::create_with(cfg.clone(), cfg)
    }

    /// Creates a fresh primary from `primary_cfg` and a fresh backup from
    /// `backup_cfg` (they may differ in fault-injection settings — e.g.
    /// distinct strict-fence seeds — but must agree on `ncores`).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] if the core counts differ; otherwise
    /// as for [`FlatStore::create`].
    pub fn create_with(
        primary_cfg: Config,
        backup_cfg: Config,
    ) -> Result<ReplicatedStore, StoreError> {
        if primary_cfg.ncores != backup_cfg.ncores {
            return Err(StoreError::InvalidConfig(
                "primary and backup must agree on ncores".into(),
            ));
        }
        // One server core (the backup applier, which is then the agent and
        // acks directly), one client port per primary core. Capacity bounds
        // replication lag: a core more than `capacity` batches ahead of the
        // backup blocks in ship().
        let fabric: ShipFabric = ShipFabric::new(1, primary_cfg.ncores, 64);
        let backup = Backup::start(&backup_cfg, &fabric)?;
        let ports = (0..primary_cfg.ncores)
            .map(|i| fabric.client_port(i))
            .collect();
        let replicator = Arc::new(Replicator::new(ports));
        let primary =
            FlatStore::create_with_replication(primary_cfg, Arc::clone(&replicator) as _)?;
        Ok(ReplicatedStore {
            primary,
            replicator,
            backup,
        })
    }

    /// The primary engine (sessions, stats, checkpoints…).
    pub fn primary(&self) -> &FlatStore {
        &self.primary
    }

    /// A clonable client handle onto the primary.
    pub fn handle(&self) -> StoreHandle {
        self.primary.handle()
    }

    /// The backup's replica image.
    pub fn backup_image(&self) -> &Arc<BackupImage> {
        self.backup.image()
    }

    /// Replication counters.
    pub fn repl_stats(&self) -> &ReplStats {
        self.replicator.stats()
    }

    /// Stores `value` under `key`; acked only once durable on both nodes.
    ///
    /// # Errors
    ///
    /// As for [`FlatStore::put`].
    pub fn put(&self, key: u64, value: impl AsRef<[u8]>) -> Result<(), StoreError> {
        self.primary.put(key, value)
    }

    /// Reads `key` (served by the primary).
    ///
    /// # Errors
    ///
    /// As for [`FlatStore::get`].
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.primary.get(key)
    }

    /// Deletes `key`; acked only once durable on both nodes.
    ///
    /// # Errors
    ///
    /// As for [`FlatStore::delete`].
    pub fn delete(&self, key: u64) -> Result<bool, StoreError> {
        self.primary.delete(key)
    }

    /// Quiesces the primary (every acked op is then also backup-durable).
    pub fn barrier(&self) {
        self.primary.barrier();
    }

    /// The primary's core count (the number of per-core logs a suffix
    /// export walks).
    pub fn ncores(&self) -> usize {
        self.backup.image().ncores()
    }

    /// Exports the suffix of the primary's `core` log past `from` as
    /// shipping-ready [`flatstore::ReplOp`]s, returning the persisted
    /// tail — the cursor for the next incremental export. `PmAddr::NULL`
    /// walks the whole chain. This is the cluster's shard-migration
    /// snapshot primitive: the same chain walk [`catch_up`] re-ships to a
    /// stale backup, here handed to an external consumer (e.g. another
    /// group's applier).
    ///
    /// Only a barriered, quiescent-for-the-slot primary yields a
    /// consistent cut, and cursors stay valid only while the cleaner has
    /// not reordered the chain — treat `Corrupt` as "restart the export
    /// from NULL" (see [`flatstore::FlatStore::log_suffix`]).
    ///
    /// # Errors
    ///
    /// As for [`flatstore::FlatStore::repl_suffix`].
    pub fn repl_suffix(
        &self,
        core: usize,
        from: pmem::PmAddr,
        f: impl FnMut(flatstore::ReplOp),
    ) -> Result<pmem::PmAddr, StoreError> {
        self.primary.repl_suffix(core, from, f)
    }

    /// The primary's full stats report with a `replication` section added.
    pub fn stats_report(&self) -> obs::StatsReport {
        let mut r = self.primary.stats_report();
        self.replicator.stats().fill_report(&mut r);
        r
    }

    /// Clean shutdown of both nodes: the primary drains first (so the
    /// watermark covers everything acked), then the backup applier stops
    /// after the ring is empty. Returns `(primary_pm, backup_pm)`.
    ///
    /// # Errors
    ///
    /// As for [`FlatStore::shutdown`]; backup applier failures surface
    /// after the primary's region is already safe.
    pub fn shutdown(self) -> Result<(Arc<PmRegion>, Arc<PmRegion>), StoreError> {
        let primary_pm = self.primary.shutdown()?;
        let backup_pm = self.backup.stop()?;
        Ok((primary_pm, backup_pm))
    }

    /// Fails the primary abruptly (no clean-shutdown snapshot; combine
    /// with [`PmRegion::simulate_crash`] to also drop its unflushed
    /// lines) and hands the surviving [`Backup`] to the caller for
    /// [`promote`](Backup::promote). Returns the dead primary's region
    /// for post-mortem inspection or a later rejoin via [`catch_up`].
    pub fn fail_primary(self) -> (Arc<PmRegion>, Backup) {
        let ReplicatedStore {
            primary, backup, ..
        } = self;
        (primary.kill(), backup)
    }
}

/// Re-ships the suffix of a quiescent `primary`'s logs that `image`'s
/// persisted ship cursors have not covered, durably applying it and
/// advancing the cursors — a stale or freshly formatted replica converges
/// without a full data copy (a fresh image's NULL cursor degenerates to a
/// full ship). Returns the number of operations shipped.
///
/// The caller must hold the primary quiescent ([`FlatStore::barrier`] is
/// called here, but clients must stay paused) and must not race the live
/// applier for the same image — in a [`ReplicatedStore`], stop shipping
/// first. Cursors are only valid while the primary's cleaner has not
/// reordered its chain (disable GC for the rejoin window, or treat a
/// `Corrupt` error as "full re-sync required").
///
/// # Errors
///
/// As for [`FlatStore::log_suffix`] and [`BackupImage::apply`].
pub fn catch_up(
    primary: &FlatStore,
    image: &BackupImage,
    stats: &ReplStats,
) -> Result<u64, StoreError> {
    primary.barrier();
    let mut total = 0u64;
    for core in 0..image.ncores() {
        let cursor = image.ship_cursor(core);
        let mut ops = Vec::new();
        let tail = primary.repl_suffix(core, cursor, |op| ops.push(op))?;
        total += ops.len() as u64;
        for chunk in ops.chunks(CATCH_UP_BATCH) {
            image.apply(core, chunk)?;
            stats.catch_up_batches.inc();
            stats.catch_up_entries.add(chunk.len() as u64);
        }
        if tail != cursor {
            image.set_ship_cursor(core, tail);
        }
    }
    Ok(total)
}
