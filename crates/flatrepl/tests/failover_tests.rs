//! Failover durability: crash the primary at arbitrary points under
//! strict-fence fault injection, crash-promote the backup, and every
//! client-acknowledged operation must survive on the promoted replica.
//! Plus rejoin: a stale replica converges through cursor-based catch-up.

use std::collections::HashMap;

use flatrepl::{catch_up, ReplStats, ReplicatedStore};
use flatstore::{BackupImage, Config, FlatStore, GcConfig, Op};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn strict_cfg(seed: u64) -> Config {
    Config::builder()
        .pm_bytes(64 << 20)
        .dram_bytes(8 << 20)
        .ncores(2)
        .group_size(2)
        .pipeline_depth(16)
        .crash_tracking(true)
        .strict_fence_seed(Some(seed))
        .build()
        .expect("valid test config")
}

fn val(k: u64, round: u64) -> Vec<u8> {
    let len = 16 + ((k.wrapping_mul(31).wrapping_add(round)) % 400) as usize;
    vec![(k % 251) as u8; len]
}

/// The core guarantee of primary–backup replication: an op acknowledged to
/// the client is durable on the pair, so it survives losing the primary
/// outright *and* a simultaneous backup power failure (strict fences drop
/// half the backup's flushed-but-unfenced lines). Unacked ops may survive
/// or vanish — but if present they must be intact, never torn.
#[test]
fn acked_ops_survive_primary_loss_and_backup_crash() {
    for seed in 0..4u64 {
        let store =
            ReplicatedStore::create_with(strict_cfg(seed * 2 + 1), strict_cfg(seed * 2 + 2))
                .expect("create pair");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa11_07e6);
        let mut session = store.handle().session().expect("session");

        // Burst of puts and deletes over an overlapping key range; wait on
        // a random subset — those are the acked ops the client observed.
        let mut tickets = Vec::new();
        let mut submitted: HashMap<u64, Option<Vec<u8>>> = HashMap::new();
        for i in 0..400u64 {
            let key = rng.gen_range(0..120u64);
            if rng.gen_bool(0.15) && submitted.contains_key(&key) {
                tickets.push((
                    key,
                    None,
                    session.submit(Op::Delete { key }).expect("submit"),
                ));
                submitted.insert(key, None);
            } else {
                let v = val(key, i);
                tickets.push((
                    key,
                    Some(v.clone()),
                    session.submit(Op::put(key, v)).expect("submit"),
                ));
                submitted.insert(key, Some(val(key, i)));
            }
        }
        // Wait a random prefix: per-key ordering means a key's last *acked*
        // write is only authoritative if no later unacked write follows it;
        // track both.
        let cut = rng.gen_range(0..tickets.len());
        let mut acked: HashMap<u64, Option<Vec<u8>>> = HashMap::new();
        let mut overwritten_later = HashMap::new();
        for (i, (key, value, ticket)) in tickets.into_iter().enumerate() {
            if i < cut {
                session.wait(ticket).expect("acked op failed");
                acked.insert(key, value);
                overwritten_later.insert(key, false);
            } else if acked.contains_key(&key) {
                overwritten_later.insert(key, true);
            }
        }
        drop(session);

        // Lose the primary, then crash the backup before promoting it: the
        // strict-fence region drops a random half of any lines that were
        // flushed but not yet fenced at the crash point.
        let (primary_pm, backup) = store.fail_primary();
        primary_pm.simulate_crash();
        let backup_pm = backup.stop().expect("backup applier failed");
        backup_pm.simulate_crash();
        let promoted = FlatStore::open(backup_pm, strict_cfg(seed * 2 + 2)).expect("promote");

        for (key, value) in &acked {
            if overwritten_later[key] {
                continue; // a later unacked write may or may not have landed
            }
            assert_eq!(
                &promoted.get(*key).expect("get"),
                value,
                "seed {seed}: acked op on key {key} lost by failover"
            );
        }
        // Unacked ops: whatever survived must still be an intact submitted
        // state for that key, never a torn or invented value.
        for (key, last) in &submitted {
            let got = promoted.get(*key).expect("get");
            if acked.contains_key(key) && !overwritten_later[key] {
                continue; // already checked exactly above
            }
            if let Some(bytes) = &got {
                let acked_match = acked.get(key).is_some_and(|v| v.as_deref() == Some(bytes));
                let last_match = last.as_deref() == Some(bytes.as_slice());
                let some_round = (0..400u64).any(|r| &val(*key, r) == bytes);
                assert!(
                    acked_match || last_match || some_round,
                    "seed {seed}: key {key} holds a value never written"
                );
            }
        }
        // The promoted store is a fully functional primary.
        promoted.put(7_000, b"post-failover").expect("put");
        assert_eq!(
            promoted.get(7_000).expect("get").as_deref(),
            Some(b"post-failover".as_ref())
        );
        promoted.shutdown().expect("shutdown");
    }
}

/// Rejoin: a replica that stopped shipping mid-stream converges by
/// re-shipping only the log suffix past its persisted cursors.
#[test]
fn stale_replica_catches_up_from_cursors() {
    let cfg = Config::builder()
        .pm_bytes(64 << 20)
        .dram_bytes(8 << 20)
        .ncores(2)
        .group_size(2)
        // Catch-up cursors point into the primary's log chain; the cleaner
        // must not reorder it during the rejoin window.
        .gc(GcConfig {
            enabled: false,
            ..GcConfig::default()
        })
        .build()
        .expect("valid test config");
    let primary = FlatStore::create(cfg.clone()).expect("create primary");
    let image = BackupImage::format(&cfg).expect("format image");
    let stats = ReplStats::default();

    for k in 0..150u64 {
        primary.put(k, val(k, 0)).expect("put");
    }
    let first = catch_up(&primary, &image, &stats).expect("first catch-up");
    assert_eq!(first, 150);

    // The replica goes stale: the primary keeps mutating.
    for k in 100..250u64 {
        primary.put(k, val(k, 1)).expect("put");
    }
    for k in 0..20u64 {
        primary.delete(k).expect("delete");
    }
    let before = stats.catch_up_entries.get();
    let second = catch_up(&primary, &image, &stats).expect("second catch-up");
    // Only the suffix shipped: 150 overwrites + 20 deletes, not the
    // original 150 again.
    assert_eq!(second, 170);
    assert_eq!(stats.catch_up_entries.get() - before, 170);

    // A third pass with nothing new ships nothing.
    assert_eq!(
        catch_up(&primary, &image, &stats).expect("idle catch-up"),
        0
    );

    // The converged replica promotes to an equal of the primary.
    let replica = FlatStore::open(image.pm(), cfg).expect("promote replica");
    drop(image);
    for k in 0..250u64 {
        let expect = if k < 20 {
            None
        } else if (100..250).contains(&k) {
            Some(val(k, 1))
        } else {
            Some(val(k, 0))
        };
        assert_eq!(replica.get(k).expect("get"), expect, "key {k}");
    }
    replica.shutdown().expect("shutdown replica");
    primary.shutdown().expect("shutdown primary");
}

/// The read cache is volatile, per-engine state: promotion rebuilds a
/// fresh `FlatStore` from the shipped logs, so the promoted replica
/// starts with a *cold* cache — nothing from the failed primary's DRAM
/// can leak across. After promotion the cache goes live on the new
/// primary: reads warm it, overwrites invalidate it, and every answer
/// matches the acknowledged history.
#[test]
fn promoted_replica_with_cache_enabled_serves_acked_state() {
    let mk = |seed: u64| {
        Config::builder()
            .pm_bytes(64 << 20)
            .dram_bytes(8 << 20)
            .ncores(2)
            .group_size(2)
            .pipeline_depth(16)
            .read_cache_bytes(1 << 20)
            .crash_tracking(true)
            .strict_fence_seed(Some(seed))
            .build()
            .expect("valid test config")
    };
    let store = ReplicatedStore::create_with(mk(201), mk(202)).expect("create pair");
    let handle = store.handle();
    for k in 0..200u64 {
        handle.put(k, val(k, 0)).expect("put");
    }
    // Warm the primary's cache, then overwrite half the keys so the
    // primary holds a mix of cached-stale-then-invalidated entries.
    for k in 0..200u64 {
        assert_eq!(handle.get(k).expect("get"), Some(val(k, 0)));
    }
    for k in (0..200u64).step_by(2) {
        handle.put(k, val(k, 1)).expect("put");
    }

    let (_primary_pm, backup) = store.fail_primary();
    let promoted = backup.promote(mk(202)).expect("promote");
    for k in 0..200u64 {
        let round = u64::from(k % 2 == 0);
        assert_eq!(
            promoted.get(k).expect("get"),
            Some(val(k, round)),
            "key {k}"
        );
    }
    // Re-read everything: this round is served (partly) from the promoted
    // store's own cache and must tell the same story.
    for k in 0..200u64 {
        let round = u64::from(k % 2 == 0);
        assert_eq!(
            promoted.get(k).expect("get"),
            Some(val(k, round)),
            "key {k}"
        );
    }
    promoted.put(0, b"post-failover").expect("put");
    assert_eq!(
        promoted.get(0).expect("get").as_deref(),
        Some(b"post-failover".as_ref())
    );
    let r = promoted.stats_report();
    assert!(
        r.get("read_cache", "hits").is_some(),
        "promoted store should report its (fresh) cache"
    );
    promoted.shutdown().expect("shutdown");
}
