//! Replicated-pair basics: acks gated on the backup watermark, shipped
//! batches landing durably in the backup image, replication observability,
//! and a pmcheck pass over the backup's apply path.

use flatrepl::{catch_up, ReplStats, ReplicatedStore};
use flatstore::{BackupImage, Config, FlatStore, Op, ReplOp};
use pmcheck::Checker;
use pmem::PmAddr;

fn cfg(ncores: usize) -> Config {
    Config::builder()
        .pm_bytes(64 << 20)
        .dram_bytes(8 << 20)
        .ncores(ncores)
        .group_size(ncores)
        .build()
        .expect("valid test config")
}

fn val(k: u64, len: usize) -> Vec<u8> {
    vec![(k % 251) as u8; len]
}

#[test]
fn replicated_ops_land_on_both_nodes() {
    let store = ReplicatedStore::create(cfg(2)).expect("create pair");
    for k in 0..200u64 {
        // Inline and out-of-line values both cross the wire.
        store.put(k, val(k, 20 + (k % 400) as usize)).expect("put");
    }
    for k in 0..40u64 {
        assert!(store.delete(k * 5).expect("delete"));
    }
    store.barrier();

    // Every acked op was shipped; the watermark covered it before the ack.
    let stats = store.repl_stats();
    assert!(stats.ship_batches.get() > 0);
    assert_eq!(stats.shipped_entries.get(), 240);
    // The backup persisted a cursor for every core that shipped.
    let image = store.backup_image();
    assert!((0..2).any(|c| image.ship_cursor(c) != PmAddr::NULL));

    let report = store.stats_report();
    assert!(report.get("replication", "ship_batches").is_some());
    assert!(report.get("replication", "shipped_entries").is_some());
    assert!(report.get("fabric", "send_backpressure").is_some());
    assert!(report.get("fabric", "peak_ring_occupancy").is_some());

    // Both regions reopen as complete stores holding the same data.
    let (ppm, bpm) = store.shutdown().expect("shutdown");
    let primary = FlatStore::open(ppm, cfg(2)).expect("reopen primary");
    let backup = FlatStore::open(bpm, cfg(2)).expect("promote backup");
    for k in 0..200u64 {
        let expect = if k % 5 == 0 && k / 5 < 40 {
            None
        } else {
            Some(val(k, 20 + (k % 400) as usize))
        };
        assert_eq!(primary.get(k).expect("get"), expect, "primary key {k}");
        assert_eq!(backup.get(k).expect("get"), expect, "backup key {k}");
    }
    primary.shutdown().expect("shutdown primary");
    backup.shutdown().expect("shutdown backup");
}

#[test]
fn pipelined_sessions_replicate_under_load() {
    let store = ReplicatedStore::create(
        Config::builder()
            .pm_bytes(64 << 20)
            .dram_bytes(8 << 20)
            .ncores(2)
            .group_size(2)
            .pipeline_depth(16)
            .build()
            .expect("valid test config"),
    )
    .expect("create pair");
    let mut session = store.handle().session().expect("session");
    let tickets: Vec<_> = (0..500u64)
        .map(|k| session.submit(Op::put(k, val(k, 24))))
        .collect::<Result<_, _>>()
        .expect("submit");
    for t in tickets {
        session.wait(t).expect("wait");
    }
    drop(session);
    assert_eq!(store.repl_stats().shipped_entries.get(), 500);
    // Pipelining actually batches the shipping: fewer messages than ops.
    assert!(store.repl_stats().ship_batches.get() < 500);
    store.shutdown().expect("shutdown");
}

#[test]
fn backup_apply_path_is_checker_clean() {
    // pmcheck over the backup's whole ingest path: out-of-line records,
    // batched appends, cursor advances — zero ordering violations.
    let cfg = Config::builder()
        .pm_bytes(64 << 20)
        .ncores(2)
        .group_size(2)
        .crash_tracking(true)
        .build()
        .expect("valid test config");
    let image = BackupImage::format(&cfg).expect("format image");
    image.pm().set_trace(true);
    let mut checker = Checker::new();
    for round in 0..50u64 {
        for core in 0..2 {
            let ops: Vec<ReplOp> = (0..16u64)
                .map(|i| {
                    let key = round * 100 + i;
                    match i % 4 {
                        3 => ReplOp::Delete {
                            key,
                            version: round as u32 + 1,
                        },
                        2 => ReplOp::Put {
                            key,
                            version: round as u32 + 1,
                            value: val(key, 2048), // out-of-line
                        },
                        _ => ReplOp::Put {
                            key,
                            version: round as u32 + 1,
                            value: val(key, 20),
                        },
                    }
                })
                .collect();
            image.apply(core, &ops).expect("apply");
            image.set_ship_cursor(core, PmAddr(0x40_0040 + round));
            checker.feed(&image.pm().take_events());
        }
    }
    let v = checker.violations();
    assert!(v.is_empty(), "backup apply violations: {v:?}");
}

#[test]
fn catch_up_counters_feed_the_report() {
    let primary = FlatStore::create(cfg(2)).expect("create primary");
    for k in 0..100u64 {
        primary.put(k, val(k, 30)).expect("put");
    }
    let image = BackupImage::format(&cfg(2)).expect("format image");
    let stats = ReplStats::default();
    let shipped = catch_up(&primary, &image, &stats).expect("catch up");
    assert_eq!(shipped, 100);
    assert_eq!(stats.catch_up_entries.get(), 100);
    assert!(stats.catch_up_batches.get() >= 2, "chunked into batches");
    let mut r = obs::StatsReport::new("repl");
    stats.fill_report(&mut r);
    assert!(r.get("replication", "catch_up_entries").is_some());
    primary.shutdown().expect("shutdown");
}
