//! Model-based property test for the Masstree layer.

use std::collections::BTreeMap;

use masstree::Masstree;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Cas(u64, u64, u64),
    Range(u64, u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..300, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0u64..300).prop_map(Op::Remove),
            (0u64..300).prop_map(Op::Get),
            (0u64..300, 0u64..5, 0u64..5).prop_map(|(k, o, n)| Op::Cas(k, o, n)),
            (0u64..300, 0u64..100).prop_map(|(lo, span)| Op::Range(lo, lo + span)),
        ],
        1..500,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn matches_btreemap(script in ops()) {
        let t = Masstree::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &script {
            match *op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(t.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(t.remove(k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(t.get(k), model.get(&k).copied());
                }
                Op::Cas(k, o, n) => {
                    let expect = model.get(&k) == Some(&o);
                    prop_assert_eq!(t.cas(k, o, n), expect);
                    if expect {
                        model.insert(k, n);
                    }
                }
                Op::Range(lo, hi) => {
                    let mut got = Vec::new();
                    t.range(lo, hi, &mut |k, v| { got.push((k, v)); true });
                    let expect: Vec<(u64, u64)> =
                        model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(t.len(), model.len());
        }
    }
}

mod bytes_props {
    use std::collections::BTreeMap;

    use masstree::MassBytes;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>, u64),
        Remove(Vec<u8>),
        Get(Vec<u8>),
    }

    fn keys() -> impl Strategy<Value = Vec<u8>> {
        // Short alphabet + bounded length maximizes prefix collisions,
        // which is where trie layering can go wrong.
        prop::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(0u8)], 0..20)
    }

    fn ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![
                (keys(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
                keys().prop_map(Op::Remove),
                keys().prop_map(Op::Get),
            ],
            1..300,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn massbytes_matches_btreemap(script in ops()) {
            let t = MassBytes::new();
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            for op in &script {
                match op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(t.insert(k, *v), model.insert(k.clone(), *v));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(t.remove(k), model.remove(k));
                    }
                    Op::Get(k) => {
                        prop_assert_eq!(t.get(k), model.get(k).copied());
                    }
                }
                prop_assert_eq!(t.len(), model.len());
            }
            // Full ordered iteration equals the model's.
            let mut got: Vec<(Vec<u8>, u64)> = Vec::new();
            t.for_each_ordered(&mut |k, v| {
                got.push((k.to_vec(), v));
                true
            });
            let expect: Vec<(Vec<u8>, u64)> =
                model.iter().map(|(k, v)| (k.clone(), *v)).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
