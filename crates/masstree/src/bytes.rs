//! The full Masstree shape: a **trie of B+-tree layers**, each indexed by
//! one 8-byte key slice (Mao et al., EuroSys'12 §4.1).
//!
//! The FlatStore paper only needs fixed 8-byte keys, so the engine uses the
//! single-layer [`Masstree`](crate::Masstree). This module supplies the
//! general structure for variable-length byte-string keys — the paper's
//! "FlatStore can place the keys out of the OpLog to support larger keys"
//! direction — by composing those layers exactly as Masstree does:
//!
//! * A key is split into 8-byte slices (big-endian padded, so byte order =
//!   slice integer order = lexicographic order).
//! * Each layer maps `slice -> value | next layer`; keys that share an
//!   8-byte prefix descend into a deeper layer.
//! * Within a layer, entries for keys that *end* at that layer are
//!   distinguished from longer keys by the remaining-length tag stored in
//!   the slot.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::Masstree;

/// A slot in a layer: either a stored value for a key ending here, or a
/// link to the next trie layer (possibly both — "key is a prefix of other
/// keys").
#[derive(Default)]
struct Slot {
    /// Value for the key terminating at this slice, with its exact tail
    /// length (0..=8) to distinguish e.g. "ab" from "ab\0".
    here: Vec<(u8, u64)>,
    /// Deeper layer for keys continuing past this slice.
    next: Option<Arc<MassBytes>>,
}

/// A concurrent ordered map from byte strings to `u64` values, shaped like
/// Masstree: a trie of B+-tree layers over 8-byte slices.
///
/// # Example
///
/// ```
/// use masstree::MassBytes;
///
/// let t = MassBytes::new();
/// t.insert(b"persistent", 1);
/// t.insert(b"persistence", 2);
/// t.insert(b"pm", 3);
/// assert_eq!(t.get(b"persistent"), Some(1));
/// assert_eq!(t.get(b"persist"), None);
/// assert_eq!(t.remove(b"pm"), Some(3));
/// assert_eq!(t.len(), 2);
/// ```
pub struct MassBytes {
    /// This layer's B+-tree: slice -> index into `slots`.
    layer: Masstree,
    slots: RwLock<Vec<RwLock<Slot>>>,
    len: std::sync::atomic::AtomicUsize,
}

impl Default for MassBytes {
    fn default() -> Self {
        Self::new()
    }
}

/// Splits the key into its first slice (big-endian, zero-padded) plus the
/// tail length actually used (1..=8), and the rest.
fn first_slice(key: &[u8]) -> (u64, u8, &[u8]) {
    let take = key.len().min(8);
    let mut buf = [0u8; 8];
    buf[..take].copy_from_slice(&key[..take]);
    (u64::from_be_bytes(buf), take as u8, &key[take..])
}

impl MassBytes {
    /// Creates an empty map.
    pub fn new() -> MassBytes {
        MassBytes {
            layer: Masstree::new(),
            slots: RwLock::new(Vec::new()),
            len: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of live keys (across all layers).
    pub fn len(&self) -> usize {
        self.len.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot_for(&self, slice: u64) -> usize {
        if let Some(idx) = self.layer.get(slice) {
            return idx as usize;
        }
        // Slice creation is serialized by the slots lock: without it, a
        // racing inserter's layer.insert could overwrite the winner's slot
        // index, orphaning values already stored in the winner's slot.
        let mut slots = self.slots.write();
        if let Some(idx) = self.layer.get(slice) {
            return idx as usize;
        }
        slots.push(RwLock::new(Slot::default()));
        let idx = slots.len() - 1;
        self.layer.insert(slice, idx as u64);
        idx
    }

    /// Inserts `key -> value`, returning the previous value if any.
    pub fn insert(&self, key: &[u8], value: u64) -> Option<u64> {
        let (slice, taken, rest) = first_slice(key);
        let idx = self.slot_for(slice);
        let slots = self.slots.read();
        let slot = &slots[idx];
        if rest.is_empty() {
            let mut s = slot.write();
            for (tl, v) in s.here.iter_mut() {
                if *tl == taken {
                    return Some(std::mem::replace(v, value));
                }
            }
            s.here.push((taken, value));
            drop(s);
            self.len.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            None
        } else {
            let next = {
                let s = slot.read();
                s.next.clone()
            };
            let next = match next {
                Some(n) => n,
                None => {
                    let mut s = slot.write();
                    s.next
                        .get_or_insert_with(|| Arc::new(MassBytes::new()))
                        .clone()
                }
            };
            drop(slots);
            let old = next.insert(rest, value);
            if old.is_none() {
                self.len.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            old
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let (slice, taken, rest) = first_slice(key);
        let idx = self.layer.get(slice)? as usize;
        let slots = self.slots.read();
        let slot = slots.get(idx)?;
        if rest.is_empty() {
            let s = slot.read();
            s.here.iter().find(|(tl, _)| *tl == taken).map(|(_, v)| *v)
        } else {
            let next = slot.read().next.clone()?;
            drop(slots);
            next.get(rest)
        }
    }

    /// Removes `key`, returning its value if present. (Layers are not
    /// pruned — like node space in the fixed-key tree, trie structure is
    /// reclaimed with the whole map.)
    pub fn remove(&self, key: &[u8]) -> Option<u64> {
        let (slice, taken, rest) = first_slice(key);
        let idx = self.layer.get(slice)? as usize;
        let slots = self.slots.read();
        let slot = slots.get(idx)?;
        if rest.is_empty() {
            let mut s = slot.write();
            let pos = s.here.iter().position(|(tl, _)| *tl == taken)?;
            let (_, v) = s.here.swap_remove(pos);
            drop(s);
            self.len.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            Some(v)
        } else {
            let next = slot.read().next.clone()?;
            drop(slots);
            let old = next.remove(rest);
            if old.is_some() {
                self.len.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            }
            old
        }
    }

    /// Visits every `(key, value)` pair in lexicographic key order until
    /// `f` returns `false`. Returns whether iteration ran to completion.
    pub fn for_each_ordered(&self, f: &mut dyn FnMut(&[u8], u64) -> bool) -> bool {
        self.walk(&mut Vec::new(), f)
    }

    fn walk(&self, prefix: &mut Vec<u8>, f: &mut dyn FnMut(&[u8], u64) -> bool) -> bool {
        // Collect this layer's slices in order (the layer tree is ordered
        // by the big-endian slice value = byte order).
        let mut slices: Vec<(u64, u64)> = Vec::new();
        self.layer.range(0, u64::MAX, &mut |k, v| {
            slices.push((k, v));
            true
        });
        // `u64::MAX` itself is a valid slice; range() excludes hi.
        if let Some(v) = self.layer.get(u64::MAX) {
            if slices.last().map(|(k, _)| *k) != Some(u64::MAX) {
                slices.push((u64::MAX, v));
            }
        }
        for (slice, idx) in slices {
            let slots = self.slots.read();
            let Some(slot) = slots.get(idx as usize) else {
                continue;
            };
            let (mut here, next) = {
                let s = slot.read();
                (s.here.clone(), s.next.clone())
            };
            drop(slots);
            // Shorter tails order before longer ones with the same bytes
            // ("ab" < "ab\0..."), and terminating keys order before any key
            // that continues past this slice.
            here.sort_unstable();
            let bytes = slice.to_be_bytes();
            for (tl, v) in here {
                let depth = prefix.len();
                prefix.extend_from_slice(&bytes[..tl as usize]);
                let go_on = f(prefix, v);
                prefix.truncate(depth);
                if !go_on {
                    return false;
                }
            }
            if let Some(next) = next {
                let depth = prefix.len();
                prefix.extend_from_slice(&bytes);
                let done = next.walk(prefix, f);
                prefix.truncate(depth);
                if !done {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_and_long_keys_round_trip() {
        let t = MassBytes::new();
        let keys: Vec<&[u8]> = vec![
            b"",
            b"a",
            b"ab",
            b"abcdefgh",          // exactly one slice
            b"abcdefghi",         // crosses into layer 2
            b"abcdefgh12345678",  // two full slices
            b"abcdefgh123456789", // three layers
            b"zzz",
        ];
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.insert(k, i as u64), None, "insert {k:?}");
        }
        assert_eq!(t.len(), keys.len());
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64), "get {k:?}");
        }
        assert_eq!(t.get(b"abc"), None);
        assert_eq!(t.get(b"abcdefgh1"), None);
    }

    #[test]
    fn prefix_keys_do_not_collide() {
        let t = MassBytes::new();
        // "ab" vs "ab\0": same padded slice, different lengths.
        t.insert(b"ab", 1);
        t.insert(b"ab\0", 2);
        t.insert(b"ab\0\0\0\0\0\0", 3); // full 8-byte slice
        assert_eq!(t.get(b"ab"), Some(1));
        assert_eq!(t.get(b"ab\0"), Some(2));
        assert_eq!(t.get(b"ab\0\0\0\0\0\0"), Some(3));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn overwrite_and_remove() {
        let t = MassBytes::new();
        assert_eq!(t.insert(b"key-one", 1), None);
        assert_eq!(t.insert(b"key-one", 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(b"key-one"), Some(2));
        assert_eq!(t.remove(b"key-one"), None);
        assert!(t.is_empty());
        // Deep key removal.
        t.insert(b"a long key spanning several slices", 9);
        assert_eq!(t.remove(b"a long key spanning several slices"), Some(9));
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn ordered_iteration_is_lexicographic() {
        let t = MassBytes::new();
        let mut keys: Vec<Vec<u8>> = vec![
            b"banana".to_vec(),
            b"apple".to_vec(),
            b"applesauce".to_vec(),
            b"app".to_vec(),
            b"banana-republic".to_vec(),
            b"cherry".to_vec(),
            vec![0xFF; 12],
            vec![],
        ];
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64);
        }
        let mut seen: Vec<Vec<u8>> = Vec::new();
        t.for_each_ordered(&mut |k, _| {
            seen.push(k.to_vec());
            true
        });
        keys.sort();
        assert_eq!(seen, keys);
    }

    #[test]
    fn early_stop_iteration() {
        let t = MassBytes::new();
        for i in 0..100u64 {
            t.insert(format!("key{i:03}").as_bytes(), i);
        }
        let mut n = 0;
        t.for_each_ordered(&mut |_, _| {
            n += 1;
            n < 10
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn concurrent_inserts_across_layers() {
        let t = Arc::new(MassBytes::new());
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let key = format!("shared-prefix-{:04}-thread{}", i, tid);
                    t.insert(key.as_bytes(), tid * 10_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 8_000);
        for tid in 0..4u64 {
            for i in (0..2_000u64).step_by(97) {
                let key = format!("shared-prefix-{:04}-thread{}", i, tid);
                assert_eq!(t.get(key.as_bytes()), Some(tid * 10_000 + i));
            }
        }
    }
}
