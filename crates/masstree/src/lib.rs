//! A concurrent ordered index for FlatStore-M (paper §4.2).
//!
//! The paper deploys [Masstree] as FlatStore's shared, range-searchable
//! volatile index. Masstree is a trie of B+-trees keyed by 8-byte slices;
//! for the paper's fixed 8-byte keys the trie has exactly one layer, so the
//! structure degenerates to a single concurrent B+-tree — which is what this
//! crate implements. The synchronization uses per-node reader/writer locks
//! with hand-over-hand coupling and *preemptive splits* (a full child is
//! split while its parent is still locked, so splits never propagate
//! upwards), a simplification of Masstree's version-validation protocol that
//! preserves its interface and linearizability, if not its lock-freedom on
//! reads.
//!
//! The full trie-of-layers shape for **variable-length byte-string keys**
//! is provided by [`MassBytes`] (the "larger keys" extension the FlatStore
//! paper sketches in §3.2).
//!
//! [Masstree]: https://dl.acm.org/doi/10.1145/2168836.2168855
//!
//! # Example
//!
//! ```
//! use masstree::Masstree;
//!
//! let t = Masstree::new();
//! t.insert(10, 100);
//! t.insert(5, 50);
//! t.insert(7, 70);
//! assert_eq!(t.get(7), Some(70));
//! let mut keys = vec![];
//! t.range(6, 11, &mut |k, _| { keys.push(k); true });
//! assert_eq!(keys, vec![7, 10]);
//! ```

mod bytes;

pub use bytes::MassBytes;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{ArcRwLockReadGuard, ArcRwLockWriteGuard, RawRwLock, RwLock};

/// Per-node fanout: a full node holds this many keys.
const FANOUT: usize = 32;

type NodeRef = Arc<RwLock<Node>>;
type ReadGuard = ArcRwLockReadGuard<RawRwLock, Node>;
type WriteGuard = ArcRwLockWriteGuard<RawRwLock, Node>;

#[derive(Debug)]
enum Node {
    Inner {
        /// Child index for `key` = `keys.partition_point(|k| key >= *k)`.
        keys: Vec<u64>,
        children: Vec<NodeRef>,
    },
    Leaf {
        keys: Vec<u64>,
        vals: Vec<u64>,
        next: Option<NodeRef>,
    },
}

impl Node {
    fn is_full(&self) -> bool {
        match self {
            Node::Inner { keys, .. } | Node::Leaf { keys, .. } => keys.len() >= FANOUT,
        }
    }

    /// Splits a full node, returning `(separator, right_sibling)`.
    fn split(&mut self) -> (u64, NodeRef) {
        match self {
            Node::Leaf { keys, vals, next } => {
                let mid = keys.len() / 2;
                let rkeys = keys.split_off(mid);
                let rvals = vals.split_off(mid);
                let sep = rkeys[0];
                let right = Arc::new(RwLock::new(Node::Leaf {
                    keys: rkeys,
                    vals: rvals,
                    next: next.take(),
                }));
                *next = Some(Arc::clone(&right));
                (sep, right)
            }
            Node::Inner { keys, children } => {
                let mid = keys.len() / 2;
                let sep = keys[mid];
                let rkeys = keys.split_off(mid + 1);
                keys.pop();
                let rchildren = children.split_off(mid + 1);
                let right = Arc::new(RwLock::new(Node::Inner {
                    keys: rkeys,
                    children: rchildren,
                }));
                (sep, right)
            }
        }
    }
}

/// The concurrent ordered index. All operations take `&self`; the structure
/// is `Send + Sync` and is shared by all of FlatStore's server cores.
pub struct Masstree {
    /// Lock order everywhere: the root holder before any node, parents
    /// before children, leaves left before right — hence no deadlock.
    root: RwLock<NodeRef>,
    len: AtomicUsize,
}

impl std::fmt::Debug for Masstree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Masstree")
            .field("len", &self.len())
            .finish()
    }
}

impl Default for Masstree {
    fn default() -> Self {
        Self::new()
    }
}

impl Masstree {
    /// Creates an empty tree.
    pub fn new() -> Masstree {
        Masstree {
            root: RwLock::new(Arc::new(RwLock::new(Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
            }))),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write-locks the root node, growing the tree first if the root is
    /// full, so descents below never have to split upwards.
    ///
    /// Replacing the root requires both the holder write lock *and* the old
    /// root's write lock, so a guard returned here stays the true root for
    /// its lifetime.
    fn lock_root_write(&self) -> WriteGuard {
        loop {
            {
                let holder = self.root.read();
                let root = Arc::clone(&holder);
                let guard = root.write_arc();
                drop(holder);
                if !guard.is_full() {
                    return guard;
                }
            }
            // Grow the tree.
            let mut holder = self.root.write();
            let root = Arc::clone(&holder);
            let mut guard = root.write_arc();
            if guard.is_full() {
                let (sep, right) = guard.split();
                drop(guard);
                *holder = Arc::new(RwLock::new(Node::Inner {
                    keys: vec![sep],
                    children: vec![root, right],
                }));
            }
        }
    }

    /// Read-locks the current root node (same holder-then-node order).
    fn lock_root_read(&self) -> ReadGuard {
        let holder = self.root.read();
        let root = Arc::clone(&holder);
        let guard = root.read_arc();
        drop(holder);
        guard
    }

    /// Inserts or updates `key`, returning the previous value if any.
    pub fn insert(&self, key: u64, value: u64) -> Option<u64> {
        let mut guard = self.lock_root_write();
        loop {
            // Invariant: `guard` is write-locked and not full.
            match &mut *guard {
                Node::Leaf { keys, vals, .. } => {
                    let idx = keys.partition_point(|&k| k < key);
                    if idx < keys.len() && keys[idx] == key {
                        let old = vals[idx];
                        vals[idx] = value;
                        return Some(old);
                    }
                    keys.insert(idx, key);
                    vals.insert(idx, value);
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                Node::Inner { keys, children } => {
                    let mut idx = keys.partition_point(|&k| key >= k);
                    let child = Arc::clone(&children[idx]);
                    let mut cguard = child.write_arc();
                    if cguard.is_full() {
                        // Preemptive split: parent (held) gains the
                        // separator; pick the correct half.
                        let (sep, right) = cguard.split();
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if key >= sep {
                            idx += 1;
                            drop(cguard);
                            let child = Arc::clone(&children[idx]);
                            cguard = child.write_arc();
                        }
                    }
                    guard = cguard;
                }
            }
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut guard = self.lock_root_read();
        loop {
            match &*guard {
                Node::Leaf { keys, vals, .. } => {
                    let idx = keys.partition_point(|&k| k < key);
                    return (idx < keys.len() && keys[idx] == key).then(|| vals[idx]);
                }
                Node::Inner { keys, children } => {
                    let idx = keys.partition_point(|&k| key >= k);
                    let child = Arc::clone(&children[idx]);
                    guard = child.read_arc();
                }
            }
        }
    }

    /// Removes `key`, returning its value if present. Leaves are not
    /// rebalanced (deletion-heavy workloads are outside the paper's
    /// evaluation; the tree stays correct, merely sparser).
    pub fn remove(&self, key: u64) -> Option<u64> {
        let mut guard = self.lock_root_write();
        loop {
            match &mut *guard {
                Node::Leaf { keys, vals, .. } => {
                    let idx = keys.partition_point(|&k| k < key);
                    if idx < keys.len() && keys[idx] == key {
                        keys.remove(idx);
                        let old = vals.remove(idx);
                        self.len.fetch_sub(1, Ordering::Relaxed);
                        return Some(old);
                    }
                    return None;
                }
                Node::Inner { keys, children } => {
                    let idx = keys.partition_point(|&k| key >= k);
                    let child = Arc::clone(&children[idx]);
                    guard = child.write_arc();
                }
            }
        }
    }

    /// Atomically replaces `key`'s value with `new` iff it currently equals
    /// `old` — the log cleaner's pointer-update primitive (paper §3.4).
    /// Returns whether the swap happened.
    pub fn cas(&self, key: u64, old: u64, new: u64) -> bool {
        let mut guard = self.lock_root_write();
        loop {
            match &mut *guard {
                Node::Leaf { keys, vals, .. } => {
                    let idx = keys.partition_point(|&k| k < key);
                    if idx < keys.len() && keys[idx] == key && vals[idx] == old {
                        vals[idx] = new;
                        return true;
                    }
                    return false;
                }
                Node::Inner { keys, children } => {
                    let idx = keys.partition_point(|&k| key >= k);
                    let child = Arc::clone(&children[idx]);
                    guard = child.write_arc();
                }
            }
        }
    }

    /// Visits `(key, value)` pairs with `lo <= key < hi` in ascending order
    /// until `f` returns `false`, using hand-over-hand read locks along the
    /// leaf chain.
    pub fn range(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, u64) -> bool) {
        let mut guard = self.lock_root_read();
        loop {
            match &*guard {
                Node::Leaf { .. } => break,
                Node::Inner { keys, children } => {
                    let idx = keys.partition_point(|&k| lo >= k);
                    let child = Arc::clone(&children[idx]);
                    guard = child.read_arc();
                }
            }
        }
        loop {
            let next = match &*guard {
                Node::Leaf { keys, vals, next } => {
                    for (i, &k) in keys.iter().enumerate() {
                        if k >= hi {
                            return;
                        }
                        if k >= lo && !f(k, vals[i]) {
                            return;
                        }
                    }
                    next.clone()
                }
                Node::Inner { .. } => unreachable!("leaf chain holds only leaves"),
            };
            match next {
                Some(n) => guard = n.read_arc(),
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let t = Masstree::new();
        for k in 0..10_000u64 {
            assert_eq!(t.insert(k, k * 2), None);
        }
        assert_eq!(t.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(t.get(k), Some(k * 2));
        }
        assert_eq!(t.remove(5000), Some(10_000));
        assert_eq!(t.get(5000), None);
        assert_eq!(t.remove(5000), None);
        assert_eq!(t.len(), 9999);
    }

    #[test]
    fn reverse_and_random_insert_order() {
        let t = Masstree::new();
        for k in (0..5000u64).rev() {
            t.insert(k, k);
        }
        for k in 0..5000u64 {
            assert_eq!(t.get(k), Some(k));
        }
        let t = Masstree::new();
        for k in 0..5000u64 {
            let k = k.wrapping_mul(0x9E3779B97F4A7C15);
            t.insert(k, !k);
        }
        for k in 0..5000u64 {
            let k = k.wrapping_mul(0x9E3779B97F4A7C15);
            assert_eq!(t.get(k), Some(!k));
        }
    }

    #[test]
    fn update_returns_old() {
        let t = Masstree::new();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 20), Some(10));
        assert_eq!(t.get(1), Some(20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn range_scan_sorted_and_bounded() {
        let t = Masstree::new();
        for k in (0..4000u64).rev() {
            t.insert(k * 3, k);
        }
        let mut seen = Vec::new();
        t.range(100, 1000, &mut |k, _| {
            seen.push(k);
            true
        });
        let expect: Vec<u64> = (100..1000).filter(|k| k % 3 == 0).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn range_early_stop() {
        let t = Masstree::new();
        for k in 0..1000u64 {
            t.insert(k, k);
        }
        let mut n = 0;
        t.range(0, 1000, &mut |_, _| {
            n += 1;
            n < 17
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn cas_semantics() {
        let t = Masstree::new();
        t.insert(9, 90);
        assert!(!t.cas(9, 91, 99));
        assert!(t.cas(9, 90, 99));
        assert_eq!(t.get(9), Some(99));
        assert!(!t.cas(404, 0, 1));
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let t = Arc::new(Masstree::new());
        let threads = 8u64;
        let per = 3000u64;
        let mut handles = Vec::new();
        for tid in 0..threads {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let k = tid * per + i;
                    t.insert(k, k + 1);
                    // Interleave reads of our own writes.
                    assert_eq!(t.get(k), Some(k + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), (threads * per) as usize);
        let mut count = 0u64;
        let mut prev = None;
        t.range(0, u64::MAX, &mut |k, v| {
            assert_eq!(v, k + 1);
            if let Some(p) = prev {
                assert!(k > p, "range out of order");
            }
            prev = Some(k);
            count += 1;
            true
        });
        assert_eq!(count, threads * per);
    }

    #[test]
    fn concurrent_mixed_workload_with_scans() {
        let t = Arc::new(Masstree::new());
        for k in 0..2000u64 {
            t.insert(k, 0);
        }
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    match i % 4 {
                        0 => {
                            t.insert(i, tid);
                        }
                        1 => {
                            t.get(i);
                        }
                        2 => {
                            let mut n = 0;
                            t.range(i, i + 50, &mut |_, _| {
                                n += 1;
                                n < 20
                            });
                        }
                        _ => {
                            t.cas(i, tid, tid + 1);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
