//! `pmlint` — offline, std-only lint pass over the workspace's `.rs` files
//! enforcing the persistence-discipline conventions that `rustc`/`clippy`
//! cannot see:
//!
//! | rule | scope | requirement |
//! |------|-------|-------------|
//! | `safety-comment` | every file | each line containing `unsafe` carries a `// SAFETY:` comment on it or directly above |
//! | `write-without-persist` | oplog, pmalloc, indexes, flatstore, flatrepl `src/` | a function that stores to PM (`write*`/`fill`) must also flush/fence/persist, or explain why its caller does |
//! | `sim-wall-clock` | simkv, obs, flatclus `src/` | no `Instant::now`/`SystemTime` in clock-agnostic code: the simulator runs on virtual time only, the obs span/histogram layer must take every timestamp from its caller so the same code serves both wall-clock and virtual-time producers, and the cluster layer stamps migrations with `flatrpc::clock` so its accounting stays monotonic |
//! | `no-unwrap` | pmem, pmalloc, oplog, indexes, flatstore, flatclus `src/` | no `.unwrap()`/`.expect(` in non-test library code |
//! | `volatile-only` | flatstore `src/cache.rs` | the DRAM read cache must never touch PM (`PmRegion`/`PmAddr`/flush/fence/persist) — its whole coherence argument rests on being reconstructible-from-nothing volatile state |
//!
//! A finding can be waived in place with an *escape comment* on the
//! offending line or the line above, naming the rule and giving a reason:
//!
//! ```text
//! // pmlint: allow(no-unwrap) — length checked two lines up
//! ```
//!
//! The reason is mandatory: an escape without one is itself reported
//! (`allow-missing-reason`). Exit status is nonzero when anything fires,
//! so `scripts/check.sh` and CI gate on it.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose `src/` must stay free of `.unwrap()`/`.expect(`: they sit
/// on the persistence path (or, for `flatclus`, the migration path —
/// where a panic mid-transfer strands a slot half-shipped), so a panic
/// can strand half-written PM state.
const NO_UNWRAP_CRATES: &[&str] = &[
    "pmem",
    "pmalloc",
    "oplog",
    "indexes",
    "flatstore",
    "flatclus",
];

/// Crates whose `src/` functions are held to the write-implies-persist rule.
const WRITE_PERSIST_CRATES: &[&str] = &["oplog", "pmalloc", "indexes", "flatstore", "flatrepl"];

/// PM store entry points on `PmRegion` (and the index stores built on it).
const WRITE_TOKENS: &[&str] = &[".write(", ".write_u64(", ".write_u8(", ".fill("];

/// Evidence that a function takes responsibility for durability itself.
/// The bare substring `persist` covers `.persist(`, `persist_bitmaps(`,
/// helper names like `persist_header`, and so on.
const PERSIST_TOKENS: &[&str] = &[".flush(", ".fence(", "persist", "commit_point("];

/// PM-facing names that must never appear in volatile-only modules. The
/// cache's crash-safety story is "lose everything, rebuild from misses";
/// any PM type or persistence call in it breaks that argument. This is
/// deliberately a per-file rule with reasoned escapes, not a blanket
/// allowlist exempting the cache from `write-without-persist` — the cache
/// stays inside that rule's scope, it just has nothing for it to match.
const VOLATILE_ONLY_TOKENS: &[&str] = &["PmRegion", "PmAddr", ".persist(", ".flush(", ".fence("];

const RULE_NAMES: &[&str] = &[
    "safety-comment",
    "write-without-persist",
    "sim-wall-clock",
    "no-unwrap",
    "volatile-only",
    "relaxed-ordering",
];

/// Files whose atomics are all statistics by design — every access in
/// them may be `Relaxed` without comment. Anything outside this list
/// needs either the stat-bump idiom (`fetch_add`/`fetch_sub`/`fetch_max`,
/// which also continue release sequences) or a reasoned escape naming the
/// edge that makes the relaxed access sound.
const RELAXED_STAT_FILES: &[&[&str]] = &[
    &["crates", "obs", "src", "counter.rs"],
    &["crates", "obs", "src", "hist.rs"],
    &["crates", "flatstore", "src", "cache.rs"],
];

#[derive(Debug, Clone, PartialEq, Eq)]
struct Finding {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// One source line split into executable text and comment text, with
/// string/char literal contents blanked so token scans cannot be fooled.
#[derive(Debug, Default, Clone)]
struct Line {
    code: String,
    comment: String,
}

/// Splits `src` into per-line code/comment pairs. Handles `//` and nested
/// `/* */` comments, string and char literals (contents dropped, quotes
/// kept), raw strings with any number of `#`s, and lifetimes (`'a` is not
/// a char literal).
fn strip_source(src: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut out = Vec::new();
    let mut cur = Line::default();
    let mut st = St::Code;
    let b: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = b.get(i + 1).copied().unwrap_or('\0');
                if c == '/' && next == '/' {
                    st = St::LineComment;
                    i += 2;
                } else if c == '/' && next == '*' {
                    st = St::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    st = St::Str;
                    i += 1;
                } else if c == 'r' && (next == '"' || next == '#') {
                    // Possible raw string: r"..." or r#"..."# (any depth).
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        cur.code.push('"');
                        st = St::RawStr(hashes);
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal is 'x' or '\..'.
                    let is_char = next == '\\' || b.get(i + 2) == Some(&'\'');
                    if is_char {
                        cur.code.push('\'');
                        st = St::Char;
                        i += 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            St::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            St::BlockComment(d) => {
                let next = b.get(i + 1).copied().unwrap_or('\0');
                if c == '/' && next == '*' {
                    st = St::BlockComment(d + 1);
                    i += 2;
                } else if c == '*' && next == '/' {
                    st = if d == 1 {
                        St::Code
                    } else {
                        St::BlockComment(d - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && b.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        cur.code.push('"');
                        st = St::Code;
                        i = j;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            St::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        out.push(cur);
    }
    out
}

/// Marks every line inside a `#[cfg(test)]`-gated item (brace-delimited;
/// an attribute followed by `;` before any `{` gates nothing).
fn test_spans(lines: &[Line]) -> Vec<bool> {
    let mut out = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut test_depth: Option<i64> = None;
    for (i, l) in lines.iter().enumerate() {
        let code = &l.code;
        if code.contains("#[cfg(test)]") {
            pending = true;
        }
        if test_depth.is_some() {
            out[i] = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if pending && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending = false;
                        out[i] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_depth == Some(depth) {
                        test_depth = None;
                    }
                }
                ';' if pending && test_depth.is_none() && depth == 0 => pending = false,
                _ => {}
            }
        }
    }
    out
}

/// An escape comment parsed from one line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Allow {
    rule: String,
    has_reason: bool,
}

/// Parses `pmlint: allow(rule) — reason` if the comment *starts* with it
/// (so prose mentioning the syntax, e.g. backtick-quoted docs, is inert).
fn parse_allow(comment: &str) -> Option<Allow> {
    let t = comment.trim_start_matches(['/', '!']).trim_start();
    let rest = t.strip_prefix("pmlint:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
        .trim();
    Some(Allow {
        rule,
        has_reason: !reason.is_empty(),
    })
}

/// Which rule families apply to a file, derived from its workspace path.
#[derive(Debug, Default, Clone, Copy)]
struct Scope {
    no_unwrap: bool,
    write_persist: bool,
    sim_wall_clock: bool,
    volatile_only: bool,
    relaxed_ordering: bool,
}

fn scope_of(rel: &Path) -> Scope {
    let parts: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    let lib_src = parts.len() > 3 && parts[0] == "crates" && parts[2] == "src";
    let krate = if lib_src { parts[1] } else { "" };
    Scope {
        no_unwrap: lib_src && NO_UNWRAP_CRATES.contains(&krate),
        write_persist: lib_src && WRITE_PERSIST_CRATES.contains(&krate),
        // obs rides along: span/histogram code must never read the wall
        // clock itself — callers pass timestamps in, which is exactly what
        // lets the simulator reuse it unchanged under virtual time. The
        // cluster layer rides along too: it stamps migration windows with
        // `flatrpc::clock::now_ns` (monotonic), never the system clock.
        sim_wall_clock: lib_src && ["simkv", "obs", "flatclus"].contains(&krate),
        volatile_only: lib_src && krate == "flatstore" && parts[3..] == ["cache.rs"],
        // The fabric hot path (RPC ring, engine, batching) plus obs: any
        // `Relaxed` access there is either a stat counter or a claim
        // about the memory model that must be written down.
        relaxed_ordering: lib_src
            && ["flatrpc", "flatstore", "obs"].contains(&krate)
            && !RELAXED_STAT_FILES.contains(&parts.as_slice()),
    }
}

fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before = code[..at].chars().next_back();
        let after = code[at + word.len()..].chars().next();
        let boundary = |c: Option<char>| !c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary(before) && boundary(after) {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// A line is "transparent" for the SAFETY walk-up: blank, pure comment, or
/// attribute-only — the comment may sit above a `#[inline]` etc.
fn transparent(l: &Line) -> bool {
    let t = l.code.trim();
    t.is_empty() || (t.starts_with("#[") && t.ends_with(']'))
}

fn check_file(rel: &Path, src: &str) -> Vec<Finding> {
    let lines = strip_source(src);
    let in_test = test_spans(&lines);
    let scope = scope_of(rel);
    let allows: Vec<Option<Allow>> = lines.iter().map(|l| parse_allow(&l.comment)).collect();
    let mut findings = Vec::new();

    // Escapes themselves: a reasonless allow is a finding, always.
    for (i, a) in allows.iter().enumerate() {
        if let Some(a) = a {
            if !RULE_NAMES.contains(&a.rule.as_str()) {
                findings.push(Finding {
                    path: rel.to_path_buf(),
                    line: i + 1,
                    rule: "allow-missing-reason",
                    message: format!("unknown rule `{}` in pmlint escape", a.rule),
                });
            } else if !a.has_reason {
                findings.push(Finding {
                    path: rel.to_path_buf(),
                    line: i + 1,
                    rule: "allow-missing-reason",
                    message: format!(
                        "escape for `{}` has no reason — write `// pmlint: allow({}) — why`",
                        a.rule, a.rule
                    ),
                });
            }
        }
    }

    // An escape covers the line it sits on and the code line directly
    // below its comment block (walking up through comments/attributes, so
    // multi-line reasons work).
    let allowed = |line0: usize, rule: &str| -> bool {
        let hit = |i: usize| {
            allows[i]
                .as_ref()
                .is_some_and(|a| a.rule == rule && a.has_reason)
        };
        if hit(line0) {
            return true;
        }
        let mut j = line0;
        while j > 0 && transparent(&lines[j - 1]) {
            j -= 1;
            if hit(j) {
                return true;
            }
        }
        false
    };
    let mut report = |line0: usize, rule: &'static str, message: String| {
        if !allowed(line0, rule) {
            findings.push(Finding {
                path: rel.to_path_buf(),
                line: line0 + 1,
                rule,
                message,
            });
        }
    };

    // safety-comment: every `unsafe` line, everywhere (tests included —
    // undocumented unsafe in a test is just as unreadable).
    for (i, l) in lines.iter().enumerate() {
        if !has_word(&l.code, "unsafe") {
            continue;
        }
        let mut ok = l.comment.contains("SAFETY:");
        let mut j = i;
        while !ok && j > 0 && transparent(&lines[j - 1]) {
            j -= 1;
            ok = lines[j].comment.contains("SAFETY:");
        }
        if !ok {
            report(
                i,
                "safety-comment",
                "`unsafe` without a `// SAFETY:` comment on it or directly above".to_string(),
            );
        }
    }

    // sim-wall-clock: the DES must run on virtual time only.
    if scope.sim_wall_clock {
        for (i, l) in lines.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            for tok in ["Instant::now", "SystemTime"] {
                if l.code.contains(tok) {
                    report(
                        i,
                        "sim-wall-clock",
                        format!(
                            "`{tok}` in clock-agnostic code — take the timestamp from the caller"
                        ),
                    );
                }
            }
        }
    }

    // volatile-only: the DRAM cache module may not name PM types or call
    // persistence primitives (tests included — a test that hands the cache
    // a PmRegion is designing the coupling this rule forbids).
    if scope.volatile_only {
        for (i, l) in lines.iter().enumerate() {
            for tok in VOLATILE_ONLY_TOKENS {
                if l.code.contains(tok) {
                    report(
                        i,
                        "volatile-only",
                        format!("`{tok}` in the volatile read cache — DRAM state only"),
                    );
                }
            }
        }
    }

    // no-unwrap: persistence-path library code must propagate errors.
    if scope.no_unwrap {
        for (i, l) in lines.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            for tok in [".unwrap()", ".expect("] {
                if l.code.contains(tok) {
                    report(
                        i,
                        "no-unwrap",
                        format!("`{tok}` in persistence-crate library code"),
                    );
                }
            }
        }
    }

    // relaxed-ordering: `Relaxed` in the fabric hot path is a memory-model
    // claim. Statistic bumps (`fetch_add`/`fetch_sub`/`fetch_max` — RMWs
    // that also continue release sequences) and report formatting
    // (`.row(...)`) are idiomatically fine; every other relaxed access
    // must name its happens-before edge in an escape, ideally pointing at
    // the racecheck model that explores it.
    if scope.relaxed_ordering {
        for (i, l) in lines.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            let code = &l.code;
            if !has_word(code, "Relaxed") {
                continue;
            }
            // Imports only name the ordering; the accesses are what count.
            if code.trim_start().starts_with("use ") {
                continue;
            }
            if ["fetch_add(", "fetch_sub(", "fetch_max(", ".row("]
                .iter()
                .any(|idiom| code.contains(idiom))
            {
                continue;
            }
            report(
                i,
                "relaxed-ordering",
                "`Relaxed` outside the stat-counter idiom — state the \
                 happens-before edge that makes it sound in a \
                 `pmlint: allow(relaxed-ordering)` escape (and cover it \
                 with a racecheck model)"
                    .to_string(),
            );
        }
    }

    // write-without-persist: per-function brace tracking; a function that
    // stores to PM must show durability intent (or carry an escape saying
    // its caller persists).
    if scope.write_persist {
        struct Frame {
            start_depth: i64,
            first_write: Option<usize>,
            persists: bool,
        }
        let mut depth: i64 = 0;
        let mut pending_fn = false;
        let mut stack: Vec<Frame> = Vec::new();
        for (i, l) in lines.iter().enumerate() {
            let code = &l.code;
            if !in_test[i] {
                if has_word(code, "fn") {
                    pending_fn = true;
                }
                if let Some(top) = stack.last_mut() {
                    if top.first_write.is_none() && WRITE_TOKENS.iter().any(|t| code.contains(*t)) {
                        top.first_write = Some(i);
                    }
                    if PERSIST_TOKENS.iter().any(|t| code.contains(*t)) {
                        top.persists = true;
                    }
                }
            }
            for c in code.chars() {
                match c {
                    '{' => {
                        if pending_fn {
                            stack.push(Frame {
                                start_depth: depth,
                                first_write: None,
                                persists: false,
                            });
                            pending_fn = false;
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if stack.last().is_some_and(|f| f.start_depth == depth) {
                            let f = stack.pop().expect("checked non-empty");
                            if let (Some(w), false) = (f.first_write, f.persists) {
                                report(
                                    w,
                                    "write-without-persist",
                                    "PM store in a function with no flush/fence/persist — \
                                     persist here or escape with the caller's protocol"
                                        .to_string(),
                                );
                            }
                        }
                    }
                    // A `;` before the body's `{` means this `fn` has no
                    // body here (trait decl, fn-pointer type).
                    ';' if pending_fn => pending_fn = false,
                    _ => {}
                }
            }
        }
    }

    findings
}

fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut dirs = vec![root.to_path_buf()];
    while let Some(dir) = dirs.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                dirs.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn run(root: &Path) -> (usize, Vec<Finding>) {
    let mut findings = Vec::new();
    let files = collect_rs_files(root);
    for path in &files {
        let Ok(src) = fs::read_to_string(path) else {
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(path);
        findings.extend(check_file(rel, &src));
    }
    (files.len(), findings)
}

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map_or_else(
        || {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("pmlint lives two levels under the workspace root")
                .to_path_buf()
        },
        PathBuf::from,
    );
    let (nfiles, findings) = run(&root);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("pmlint: clean ({nfiles} files)");
        ExitCode::SUCCESS
    } else {
        println!("pmlint: {} finding(s) in {nfiles} files", findings.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rel: &str, src: &str) -> Vec<Finding> {
        check_file(Path::new(rel), src)
    }

    fn rules(f: &[Finding]) -> Vec<&str> {
        f.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn strip_separates_code_and_comments() {
        let l = strip_source("let x = 1; // tail note\n/* block */ let y = 2;\n");
        assert_eq!(l[0].code.trim(), "let x = 1;");
        assert_eq!(l[0].comment.trim(), "tail note");
        assert_eq!(l[1].code.trim(), "let y = 2;");
    }

    #[test]
    fn strip_blanks_strings_chars_and_raw_strings() {
        let l = strip_source(
            "let s = \"unsafe // not code\";\nlet r = r#\"also \"unsafe\"\"#;\nlet c = '\\''; let lt: &'static str = \"\";\n",
        );
        for line in &l {
            assert!(!line.code.contains("unsafe"), "{:?}", line.code);
        }
        assert!(l[2].code.contains("'static"), "{:?}", l[2].code);
    }

    #[test]
    fn strip_handles_nested_block_comments() {
        let l = strip_source("/* outer /* inner */ still comment */ let z = 3;\n");
        assert_eq!(l[0].code.trim(), "let z = 3;");
        assert!(l[0].comment.contains("inner"));
    }

    #[test]
    fn test_spans_cover_cfg_test_modules_only() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn more() {}\n";
        let lines = strip_source(src);
        let spans = test_spans(&lines);
        assert_eq!(spans, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn cfg_test_attribute_on_use_item_gates_nothing() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { x.unwrap() }\n";
        let lines = strip_source(src);
        assert!(!test_spans(&lines)[2]);
    }

    #[test]
    fn safety_comment_rule() {
        let bad = "fn f() {\n    unsafe { g() }\n}\n";
        assert_eq!(rules(&check("crates/x/src/a.rs", bad)), ["safety-comment"]);

        let good = "fn f() {\n    // SAFETY: g upholds it\n    unsafe { g() }\n}\n";
        assert!(check("crates/x/src/a.rs", good).is_empty());

        let trailing = "unsafe impl Send for X {} // SAFETY: no shared state\n";
        assert!(check("crates/x/src/a.rs", trailing).is_empty());

        let with_attr = "// SAFETY: documented\n#[inline]\nunsafe fn f() {}\n";
        assert!(check("crates/x/src/a.rs", with_attr).is_empty());
    }

    #[test]
    fn no_unwrap_scoped_to_persistence_crate_src() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(rules(&check("crates/pmem/src/a.rs", src)), ["no-unwrap"]);
        // The cluster migration path is panic-free by the same rule.
        assert_eq!(
            rules(&check("crates/flatclus/src/migrate.rs", src)),
            ["no-unwrap"]
        );
        assert!(check("crates/obs/src/a.rs", src).is_empty());
        assert!(check("crates/pmem/tests/a.rs", src).is_empty());
        assert!(check("crates/flatclus/tests/a.rs", src).is_empty());

        let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(check("crates/pmem/src/a.rs", in_test).is_empty());
    }

    #[test]
    fn sim_wall_clock_scoped_to_simkv_and_obs() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules(&check("crates/simkv/src/a.rs", src)),
            ["sim-wall-clock"]
        );
        // The obs span layer is clock-agnostic by contract: timestamps
        // always arrive from the caller.
        assert_eq!(
            rules(&check("crates/obs/src/span.rs", src)),
            ["sim-wall-clock"]
        );
        // flatclus stamps migrations with flatrpc's monotonic clock; the
        // system clock is off limits in its library code too.
        assert_eq!(
            rules(&check("crates/flatclus/src/migrate.rs", src)),
            ["sim-wall-clock"]
        );
        assert!(check("crates/obs/tests/a.rs", src).is_empty());
        assert!(check("crates/flatclus/tests/a.rs", src).is_empty());
        assert!(check("crates/flatstore/src/a.rs", src).is_empty());
    }

    #[test]
    fn write_without_persist_tracks_function_bodies() {
        let bad = "fn f(pm: &PmRegion) {\n    pm.write(a, b);\n}\n";
        assert_eq!(
            rules(&check("crates/oplog/src/a.rs", bad)),
            ["write-without-persist"]
        );

        let good = "fn f(pm: &PmRegion) {\n    pm.write(a, b);\n    pm.persist(a, 8);\n}\n";
        assert!(check("crates/oplog/src/a.rs", good).is_empty());

        // Multi-line signatures and sibling functions don't leak state.
        let multi = "fn f(\n    pm: &PmRegion,\n) {\n    pm.write(a, b);\n    pm.flush(a, 8);\n}\nfn g() {}\n";
        assert!(check("crates/oplog/src/a.rs", multi).is_empty());
        assert!(check("crates/masstree/src/a.rs", bad).is_empty());
    }

    #[test]
    fn volatile_only_scoped_to_the_cache_module() {
        let bad = "fn f(pm: &PmRegion) {\n    pm.flush(a, 8);\n}\n";
        let f = check("crates/flatstore/src/cache.rs", bad);
        assert_eq!(rules(&f), ["volatile-only", "volatile-only"]);
        // Everywhere else in flatstore PM types are the point.
        assert!(check("crates/flatstore/src/shard.rs", bad)
            .iter()
            .all(|f| f.rule != "volatile-only"));

        let escaped = "// pmlint: allow(volatile-only) — type appears in a doc link only\nfn f(pm: &PmRegion) {}\n";
        assert!(check("crates/flatstore/src/cache.rs", escaped).is_empty());

        let clean = "fn f(m: &mut HashMap<u64, usize>) { m.clear(); }\n";
        assert!(check("crates/flatstore/src/cache.rs", clean).is_empty());
    }

    #[test]
    fn relaxed_ordering_scoped_to_fabric_crates() {
        let src = "fn f(a: &AtomicU64) { a.store(1, Ordering::Relaxed); }\n";
        assert_eq!(
            rules(&check("crates/flatrpc/src/ring.rs", src)),
            ["relaxed-ordering"]
        );
        assert_eq!(
            rules(&check("crates/flatstore/src/batch.rs", src)),
            ["relaxed-ordering"]
        );
        // Outside the fabric crates, relaxed atomics are not policed.
        assert!(check("crates/pmem/src/a.rs", src).is_empty());
        // Test code and the designated stat-only files are exempt.
        assert!(check("crates/flatrpc/tests/a.rs", src).is_empty());
        assert!(check("crates/obs/src/counter.rs", src).is_empty());
        assert!(check("crates/flatstore/src/cache.rs", src).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t(a: &AtomicU64) { a.store(1, Ordering::Relaxed); }\n}\n";
        assert!(check("crates/flatrpc/src/ring.rs", in_test).is_empty());
    }

    #[test]
    fn relaxed_ordering_stat_idiom_and_escapes() {
        // Stat bumps and report rows are the allowed idiom.
        let idiom = "fn f(s: &Stats) {\n    s.hits.fetch_add(1, Ordering::Relaxed);\n    s.depth.fetch_max(d, Ordering::Relaxed);\n    r.row(\"hits\", s.hits.load(Ordering::Relaxed));\n}\n";
        assert!(check("crates/flatstore/src/shard.rs", idiom).is_empty());
        // Bare `Relaxed` from a scoped import is still caught; the `use`
        // line itself is not (it performs no access).
        let bare = "use Ordering::Relaxed;\nfn f(a: &AtomicU64) { a.store(1, Relaxed); }\n";
        assert_eq!(
            rules(&check("crates/flatstore/src/engine.rs", bare)),
            ["relaxed-ordering"]
        );
        // A reasoned escape names the happens-before edge.
        let escaped = "fn f(a: &AtomicU64) {\n    // pmlint: allow(relaxed-ordering) — own index, sole writer\n    let t = a.load(Ordering::Relaxed);\n}\n";
        assert!(check("crates/flatrpc/src/ring.rs", escaped).is_empty());
    }

    #[test]
    fn escapes_suppress_with_reason_only() {
        let reasoned =
            "fn f() {\n    // pmlint: allow(no-unwrap) — bounds checked above\n    x.unwrap();\n}\n";
        assert!(check("crates/pmem/src/a.rs", reasoned).is_empty());

        let multiline = "fn f() {\n    // pmlint: allow(no-unwrap) — the index was validated by the\n    // binary search on the line above.\n    x.unwrap();\n}\n";
        assert!(check("crates/pmem/src/a.rs", multiline).is_empty());

        let bare = "fn f() {\n    // pmlint: allow(no-unwrap)\n    x.unwrap();\n}\n";
        let f = check("crates/pmem/src/a.rs", bare);
        assert_eq!(rules(&f), ["allow-missing-reason", "no-unwrap"]);

        let unknown = "// pmlint: allow(no-such-rule) — whatever\n";
        assert_eq!(
            rules(&check("crates/pmem/src/a.rs", unknown)),
            ["allow-missing-reason"]
        );
    }

    #[test]
    fn prose_mentioning_the_syntax_is_not_an_escape() {
        let doc = "/// Waive with `// pmlint: allow(no-unwrap) — reason`.\nfn f() {}\n";
        assert!(check("crates/pmem/src/a.rs", doc).is_empty());
    }
}
