//! Deterministic workload generators for the FlatStore evaluation (§5).
//!
//! * [`Zipfian`] — YCSB's scrambled-zipfian key popularity (default
//!   skewness 0.99, the paper's setting).
//! * [`Workload`] — the §5.1 microbenchmark: a key space, uniform or
//!   zipfian popularity, fixed value sizes, and a Put/Get ratio.
//! * [`EtcWorkload`] — the §5.2 production workload: Facebook's ETC pool
//!   emulated as a trimodal size mix (40 % tiny 1–13 B, 55 % small
//!   14–300 B, 5 % large > 300 B), zipfian over tiny+small keys, uniform
//!   over large keys.
//!
//! All generators are seeded and fully deterministic, so every benchmark
//! run (and the discrete-event simulation) is reproducible.

mod etc;
mod slots;
mod zipf;

pub use etc::{EtcWorkload, SizeClass, ETC_LARGE_PCT, ETC_SMALL_PCT, ETC_TINY_PCT};
pub use slots::{rendezvous_assign, rendezvous_weight, slot_of_key, NSLOTS};
pub use zipf::Zipfian;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Store `value_len` bytes under `key`.
    Put {
        /// The 8-byte key.
        key: u64,
        /// Value size in bytes.
        value_len: usize,
    },
    /// Read `key`.
    Get {
        /// The 8-byte key.
        key: u64,
    },
    /// Delete `key`.
    Delete {
        /// The 8-byte key.
        key: u64,
    },
}

impl Op {
    /// The key this operation touches.
    pub fn key(&self) -> u64 {
        match *self {
            Op::Put { key, .. } | Op::Get { key } | Op::Delete { key } => key,
        }
    }
}

/// Key-popularity distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Scrambled zipfian with the given skewness (YCSB default 0.99).
    Zipfian {
        /// The zipf exponent θ.
        theta: f64,
    },
}

/// The §5.1 YCSB-style microbenchmark generator.
///
/// # Example
///
/// ```
/// use workloads::{Workload, KeyDist, Op};
/// let mut w = Workload::new(1_000, KeyDist::Zipfian { theta: 0.99 }, 64, 1.0, 42);
/// match w.next_op() {
///     Op::Put { key, value_len } => {
///         assert!(key < 1_000);
///         assert_eq!(value_len, 64);
///     }
///     _ => unreachable!("100 % puts"),
/// }
/// ```
#[derive(Debug)]
pub struct Workload {
    keyspace: u64,
    dist: KeyDist,
    zipf: Option<Zipfian>,
    value_len: usize,
    put_ratio: f64,
    rng: SmallRng,
}

impl Workload {
    /// Creates a generator over `keyspace` keys with the given popularity
    /// `dist`, fixed `value_len`, `put_ratio` ∈ [0, 1] and RNG `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `keyspace == 0` or `put_ratio` is outside [0, 1].
    pub fn new(keyspace: u64, dist: KeyDist, value_len: usize, put_ratio: f64, seed: u64) -> Self {
        assert!(keyspace > 0, "empty key space");
        assert!((0.0..=1.0).contains(&put_ratio), "put_ratio out of range");
        let zipf = match dist {
            KeyDist::Zipfian { theta } => Some(Zipfian::new(keyspace, theta)),
            KeyDist::Uniform => None,
        };
        Workload {
            keyspace,
            dist,
            zipf,
            value_len,
            put_ratio,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws the next key according to the popularity distribution.
    pub fn next_key(&mut self) -> u64 {
        match self.dist {
            KeyDist::Uniform => self.rng.gen_range(0..self.keyspace),
            KeyDist::Zipfian { .. } => self
                .zipf
                .as_mut()
                .expect("zipf generator present")
                .next(&mut self.rng),
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let key = self.next_key();
        if self.rng.gen_bool(self.put_ratio) {
            Op::Put {
                key,
                value_len: self.value_len,
            }
        } else {
            Op::Get { key }
        }
    }

    /// The key-space size.
    pub fn keyspace(&self) -> u64 {
        self.keyspace
    }

    /// YCSB workload A: 50 % reads, 50 % updates, zipfian.
    pub fn ycsb_a(keyspace: u64, value_len: usize, seed: u64) -> Workload {
        Workload::new(
            keyspace,
            KeyDist::Zipfian { theta: 0.99 },
            value_len,
            0.5,
            seed,
        )
    }

    /// YCSB workload B: 95 % reads, 5 % updates, zipfian.
    pub fn ycsb_b(keyspace: u64, value_len: usize, seed: u64) -> Workload {
        Workload::new(
            keyspace,
            KeyDist::Zipfian { theta: 0.99 },
            value_len,
            0.05,
            seed,
        )
    }

    /// YCSB workload C: 100 % reads, zipfian.
    pub fn ycsb_c(keyspace: u64, value_len: usize, seed: u64) -> Workload {
        Workload::new(
            keyspace,
            KeyDist::Zipfian { theta: 0.99 },
            value_len,
            0.0,
            seed,
        )
    }
}

/// Deterministic value bytes for `key` (so Gets can validate contents).
pub fn value_bytes(key: u64, len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    let mut x = key.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    while v.len() < len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let b = x.to_le_bytes();
        let take = (len - v.len()).min(8);
        v.extend_from_slice(&b[..take]);
    }
    v
}

/// Stable key hash used to route a request to a server core (paper §3.1:
/// "the server cores are determined by the keyhashes").
#[inline]
pub fn core_of(key: u64, ncores: usize) -> usize {
    let mut k = key;
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51afd7ed558ccd);
    k ^= k >> 33;
    (k % ncores as u64) as usize
}

/// Seeded RNG helper shared by the crate.
pub(crate) fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let mut a = Workload::new(1000, KeyDist::Zipfian { theta: 0.99 }, 8, 0.5, 7);
        let mut b = Workload::new(1000, KeyDist::Zipfian { theta: 0.99 }, 8, 0.5, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn put_ratio_respected() {
        let mut w = Workload::new(100, KeyDist::Uniform, 8, 0.05, 3);
        let puts = (0..20_000)
            .filter(|_| matches!(w.next_op(), Op::Put { .. }))
            .count();
        let ratio = puts as f64 / 20_000.0;
        assert!((ratio - 0.05).abs() < 0.01, "put ratio {ratio}");
    }

    #[test]
    fn uniform_covers_keyspace_evenly() {
        let mut w = Workload::new(10, KeyDist::Uniform, 8, 1.0, 5);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[w.next_key() as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "uniform counts skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn value_bytes_deterministic_and_sized() {
        assert_eq!(value_bytes(42, 100), value_bytes(42, 100));
        assert_ne!(value_bytes(42, 100), value_bytes(43, 100));
        assert_eq!(value_bytes(1, 13).len(), 13);
        assert_eq!(value_bytes(1, 0).len(), 0);
    }

    #[test]
    fn ycsb_presets_have_expected_mixes() {
        for (w, expect) in [
            (Workload::ycsb_a(1000, 8, 1), 0.5),
            (Workload::ycsb_b(1000, 8, 1), 0.05),
            (Workload::ycsb_c(1000, 8, 1), 0.0),
        ] {
            let mut w = w;
            let puts = (0..10_000)
                .filter(|_| matches!(w.next_op(), Op::Put { .. }))
                .count();
            let ratio = puts as f64 / 10_000.0;
            assert!((ratio - expect).abs() < 0.02, "got {ratio}, want {expect}");
        }
    }

    #[test]
    fn core_routing_is_stable_and_balanced() {
        let n = 16;
        let mut counts = vec![0u32; n];
        for key in 0..100_000u64 {
            let c = core_of(key, n);
            assert_eq!(c, core_of(key, n));
            counts[c] += 1;
        }
        for &c in &counts {
            assert!((5000..7600).contains(&c), "unbalanced cores: {counts:?}");
        }
    }
}
