//! The Facebook ETC pool emulation (paper §5.2).
//!
//! Trimodal item sizes over the key space: 40 % of keys are *tiny*
//! (1–13 B), 55 % *small* (14–300 B), 5 % *large* (> 300 B with high
//! variability). Requests to tiny+small keys follow a zipfian(0.99)
//! popularity; large keys are chosen uniformly. A key's size class and
//! exact value length are deterministic functions of the key, as in a real
//! store.

use rand::Rng;

use crate::zipf::Zipfian;
use crate::{rng, Op};

/// Fraction of keys that are tiny (1–13 B).
pub const ETC_TINY_PCT: u64 = 40;
/// Fraction of keys that are small (14–300 B).
pub const ETC_SMALL_PCT: u64 = 55;
/// Fraction of keys that are large (> 300 B).
pub const ETC_LARGE_PCT: u64 = 5;

/// Upper bound for large values (log-uniform in (300, 4096]).
const LARGE_MAX: usize = 4096;

/// An item's size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// 1–13 bytes.
    Tiny,
    /// 14–300 bytes.
    Small,
    /// 301–4096 bytes (log-uniform).
    Large,
}

#[inline]
fn mix(mut k: u64) -> u64 {
    k ^= k >> 30;
    k = k.wrapping_mul(0xbf58476d1ce4e5b9);
    k ^= k >> 27;
    k = k.wrapping_mul(0x94d049bb133111eb);
    k ^= k >> 31;
    k
}

/// The ETC workload generator.
///
/// Keys are laid out so classes are decided by position: keys
/// `[0, 40 % · n)` are tiny, `[40 %, 95 %)` small, `[95 %, n)` large —
/// then scrambled per-draw so the classes interleave across the hash space
/// the server cores shard on.
///
/// # Example
///
/// ```
/// use workloads::{EtcWorkload, SizeClass};
/// let mut w = EtcWorkload::new(10_000, 0.5, 1);
/// let op = w.next_op();
/// let class = EtcWorkload::size_class(op.key(), 10_000);
/// let len = EtcWorkload::value_len(op.key(), 10_000);
/// match class {
///     SizeClass::Tiny => assert!((1..=13).contains(&len)),
///     SizeClass::Small => assert!((14..=300).contains(&len)),
///     SizeClass::Large => assert!(len > 300),
/// }
/// ```
#[derive(Debug)]
pub struct EtcWorkload {
    keyspace: u64,
    put_ratio: f64,
    zipf: Zipfian,
    rng: rand::rngs::SmallRng,
}

impl EtcWorkload {
    /// Creates a generator over `keyspace` keys with the given Put ratio.
    ///
    /// # Panics
    ///
    /// Panics if `keyspace < 100` (the class split needs headroom) or the
    /// ratio is out of [0, 1].
    pub fn new(keyspace: u64, put_ratio: f64, seed: u64) -> EtcWorkload {
        assert!(keyspace >= 100, "ETC key space too small");
        assert!((0.0..=1.0).contains(&put_ratio));
        let non_large = keyspace * (ETC_TINY_PCT + ETC_SMALL_PCT) / 100;
        EtcWorkload {
            keyspace,
            put_ratio,
            zipf: Zipfian::new(non_large, 0.99),
            rng: rng(seed),
        }
    }

    /// The size class of `key` in a key space of `keyspace`.
    pub fn size_class(key: u64, keyspace: u64) -> SizeClass {
        let tiny_end = keyspace * ETC_TINY_PCT / 100;
        let small_end = keyspace * (ETC_TINY_PCT + ETC_SMALL_PCT) / 100;
        if key < tiny_end {
            SizeClass::Tiny
        } else if key < small_end {
            SizeClass::Small
        } else {
            SizeClass::Large
        }
    }

    /// The deterministic value length of `key`.
    pub fn value_len(key: u64, keyspace: u64) -> usize {
        let h = mix(key);
        match Self::size_class(key, keyspace) {
            SizeClass::Tiny => 1 + (h % 13) as usize,
            SizeClass::Small => 14 + (h % 287) as usize,
            SizeClass::Large => {
                // Log-uniform in (300, LARGE_MAX]: high variability with
                // small values dominating in count.
                let lo = (301f64).ln();
                let hi = (LARGE_MAX as f64).ln();
                let u = (h % 10_000) as f64 / 10_000.0;
                (lo + u * (hi - lo)).exp().round() as usize
            }
        }
    }

    /// Draws the next key: 5 % of requests go uniformly to large keys, the
    /// rest zipfian over tiny+small keys.
    pub fn next_key(&mut self) -> u64 {
        let non_large = self.keyspace * (ETC_TINY_PCT + ETC_SMALL_PCT) / 100;
        if self.rng.gen_range(0..100u32) < ETC_LARGE_PCT as u32 {
            self.rng.gen_range(non_large..self.keyspace)
        } else {
            self.zipf.next(&mut self.rng)
        }
    }

    /// Draws the next operation; Puts carry the key's deterministic length.
    pub fn next_op(&mut self) -> Op {
        let key = self.next_key();
        if self.rng.gen_bool(self.put_ratio) {
            Op::Put {
                key,
                value_len: Self::value_len(key, self.keyspace),
            }
        } else {
            Op::Get { key }
        }
    }

    /// The key-space size.
    pub fn keyspace(&self) -> u64 {
        self.keyspace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_fractions_match_spec() {
        let n = 100_000u64;
        let (mut tiny, mut small, mut large) = (0u64, 0u64, 0u64);
        for k in 0..n {
            match EtcWorkload::size_class(k, n) {
                SizeClass::Tiny => tiny += 1,
                SizeClass::Small => small += 1,
                SizeClass::Large => large += 1,
            }
        }
        assert_eq!(tiny, n * 40 / 100);
        assert_eq!(small, n * 55 / 100);
        assert_eq!(large, n * 5 / 100);
    }

    #[test]
    fn value_lengths_in_class_bounds() {
        let n = 10_000u64;
        for k in 0..n {
            let len = EtcWorkload::value_len(k, n);
            match EtcWorkload::size_class(k, n) {
                SizeClass::Tiny => assert!((1..=13).contains(&len)),
                SizeClass::Small => assert!((14..=300).contains(&len)),
                SizeClass::Large => assert!((301..=4096).contains(&len)),
            }
        }
    }

    #[test]
    fn large_requests_are_about_5_percent() {
        let n = 100_000u64;
        let mut w = EtcWorkload::new(n, 1.0, 9);
        let draws = 50_000;
        let large = (0..draws)
            .filter(|_| matches!(EtcWorkload::size_class(w.next_key(), n), SizeClass::Large))
            .count();
        let frac = large as f64 / draws as f64;
        assert!((0.03..0.08).contains(&frac), "large fraction {frac}");
    }

    #[test]
    fn tiny_and_small_are_skewed() {
        let n = 100_000u64;
        let mut w = EtcWorkload::new(n, 1.0, 11);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            let k = w.next_key();
            if EtcWorkload::size_class(k, n) != SizeClass::Large {
                *counts.entry(k).or_insert(0u32) += 1;
            }
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top: u32 = freqs.iter().take(100).sum();
        assert!(top > 25_000, "ETC tiny/small traffic not skewed: {top}");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = EtcWorkload::new(10_000, 0.5, 3);
        let mut b = EtcWorkload::new(10_000, 0.5, 3);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
