//! Scrambled zipfian key popularity (Gray et al., "Quickly Generating
//! Billion-Record Synthetic Databases", as used by YCSB).

use rand::Rng;

/// A zipfian rank generator over `n` items with exponent `theta`, scrambled
/// so the hottest ranks are scattered across the key space (YCSB's
/// `ScrambledZipfianGenerator`).
///
/// # Example
///
/// ```
/// use workloads::Zipfian;
/// use rand::SeedableRng;
/// let mut z = Zipfian::new(1000, 0.99);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let k = z.next(&mut rng);
/// assert!(k < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    scramble: bool,
}

impl Zipfian {
    /// Builds the generator; `zeta(n)` is computed once in O(n).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in (0, 1).
    pub fn new(n: u64, theta: f64) -> Zipfian {
        Self::build(n, theta, true)
    }

    /// Like [`new`](Self::new) but without rank scrambling: rank 0 is the
    /// hottest key. Useful for tests that need to know the hot keys.
    pub fn new_unscrambled(n: u64, theta: f64) -> Zipfian {
        Self::build(n, theta, false)
    }

    fn build(n: u64, theta: f64, scramble: bool) -> Zipfian {
        assert!(n > 0, "empty key space");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            scramble,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; integral approximation for the tail keeps
        // construction O(min(n, 10^6)).
        let exact = n.min(1_000_000);
        let mut sum = 0.0;
        for i in 1..=exact {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > exact {
            // ∫ x^-θ dx from `exact` to `n`.
            let a = 1.0 - theta;
            sum += ((n as f64).powf(a) - (exact as f64).powf(a)) / a;
        }
        sum
    }

    /// Draws the next key in `[0, n)`.
    pub fn next<R: Rng>(&mut self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let rank = rank.min(self.n - 1);
        if self.scramble {
            // FNV-style scramble of the rank into the key space.
            let mut h = rank ^ 0xcbf29ce484222325;
            h = h.wrapping_mul(0x100000001b3);
            h ^= h >> 31;
            h % self.n
        } else {
            rank
        }
    }

    /// The key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn unscrambled_rank0_is_hottest() {
        let mut z = Zipfian::new_unscrambled(10_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut c0 = 0u32;
        let mut c_rest = 0u32;
        for _ in 0..100_000 {
            if z.next(&mut rng) == 0 {
                c0 += 1;
            } else {
                c_rest += 1;
            }
        }
        // With theta 0.99 over 10k items, rank 0 draws ~10 % of traffic.
        assert!(c0 > 5_000, "rank 0 drew only {c0}");
        assert!(c_rest > 0);
    }

    #[test]
    fn skew_concentrates_mass() {
        let n = 100_000u64;
        let mut z = Zipfian::new(n, 0.99);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        let draws = 200_000;
        for _ in 0..draws {
            *counts.entry(z.next(&mut rng)).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top100: u32 = freqs.iter().take(100).sum();
        assert!(
            top100 as f64 > 0.3 * draws as f64,
            "zipf 0.99 should put >30 % of traffic on the top 100 keys (got {top100})"
        );
        // Still touches a broad tail.
        assert!(counts.len() > 10_000);
    }

    #[test]
    fn all_draws_in_range() {
        let mut z = Zipfian::new(97, 0.5);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 97);
        }
    }

    #[test]
    fn large_n_constructs_fast_via_tail_approximation() {
        let z = Zipfian::new(192_000_000, 0.99);
        assert_eq!(z.n(), 192_000_000);
        assert!(z.zetan.is_finite() && z.zetan > 0.0);
    }
}
