//! Cluster slot routing: the one hash both the real cluster
//! (`flatclus`) and the DES (`simkv`) use to map keys onto virtual
//! slots, kept here so the simulation's per-group load shares are
//! computed with exactly the arithmetic the engine routes with.

/// The cluster's default virtual-slot count (Redis Cluster uses 16384;
/// 1024 keeps the routing table and per-slot gate array small while
/// still slicing any realistic group count finely).
pub const NSLOTS: usize = 1024;

/// Maps an engine key onto a virtual slot in `0..nslots`.
///
/// FNV-1a over the key's little-endian bytes, finished with a splitmix64
/// avalanche so sequential keys spread across all slots (the same
/// construction `flatsrv` uses for raw-key hashing). Deterministic and
/// stable: routing tables persisted by one build stay valid under the
/// next.
///
/// # Panics
///
/// `nslots` must be non-zero (a cluster with no slots cannot route).
pub fn slot_of_key(key: u64, nslots: usize) -> usize {
    assert!(nslots > 0, "cluster needs at least one slot");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^= h >> 31;
    (h % nslots as u64) as usize
}

/// splitmix64 finalizer — one full avalanche round.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Highest-random-weight (rendezvous) assignment of `0..nslots` onto
/// `groups`: every slot independently ranks all groups by
/// [`rendezvous_weight`] and takes the maximum (ties to the lower id).
///
/// Shared by the real cluster router and the DES so simulated per-group
/// load shares are computed with exactly the placement the engine
/// routes with. Minimal movement holds by construction: a joining group
/// only wins the slots it now ranks first on; a leaving group only
/// releases its own.
///
/// # Panics
///
/// `groups` must be non-empty.
pub fn rendezvous_assign(nslots: usize, groups: &[u16]) -> Vec<u16> {
    assert!(!groups.is_empty(), "ring needs at least one group");
    (0..nslots)
        .map(|slot| {
            let mut best = groups[0];
            let mut best_w = rendezvous_weight(slot as u64, u64::from(groups[0]));
            for &g in &groups[1..] {
                let w = rendezvous_weight(slot as u64, u64::from(g));
                if w > best_w || (w == best_w && g < best) {
                    best = g;
                    best_w = w;
                }
            }
            best
        })
        .collect()
}

/// Per-candidate rendezvous weight for the (slot, group) pair. Two
/// avalanche rounds (mix the slot fully, fold the group in, mix again):
/// a single round over a linear slot/group combination leaves enough
/// correlation between neighboring slots to skew the argmax beyond a
/// ±20% balance budget at 1024 slots.
pub fn rendezvous_weight(slot: u64, group: u64) -> u64 {
    splitmix(splitmix(slot).wrapping_add(group.wrapping_mul(0xd1b5_4a32_d192_ed03)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_balanced_and_total() {
        let groups: Vec<u16> = (0..5).collect();
        let owners = rendezvous_assign(NSLOTS, &groups);
        assert_eq!(owners.len(), NSLOTS);
        let mut counts = [0usize; 5];
        for &g in &owners {
            counts[usize::from(g)] += 1;
        }
        let fair = NSLOTS as f64 / 5.0;
        for (g, &n) in counts.iter().enumerate() {
            let dev = (n as f64 - fair).abs() / fair;
            assert!(dev < 0.2, "group {g} owns {n} slots ({dev:.2} off fair)");
        }
    }

    #[test]
    fn slots_stay_in_range_and_spread() {
        let mut counts = vec![0u32; 64];
        for key in 0..64_000u64 {
            counts[slot_of_key(key, 64)] += 1;
        }
        let expect = 1000.0;
        for (slot, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.2, "slot {slot} has {c} keys ({dev:.2} off)");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(slot_of_key(42, NSLOTS), slot_of_key(42, NSLOTS));
    }
}
