//! Property-based tests: allocator invariants under random alloc/free
//! sequences, including crash recovery.

use std::collections::HashMap;
use std::sync::Arc;

use pmalloc::{ChunkManager, CoreAllocator, CHUNK_SIZE};
use pmem::{PmAddr, PmRegion};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    /// Free the i-th (mod len) currently live allocation.
    Free(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (257u64..100_000).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::Free),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Live blocks never overlap, are 256 B aligned, and capacity covers
    /// the request.
    #[test]
    fn live_blocks_are_disjoint(script in ops()) {
        let pm = Arc::new(PmRegion::new(32 * CHUNK_SIZE as usize));
        let mgr = Arc::new(ChunkManager::format(pm, PmAddr(0), 32));
        let mut a = CoreAllocator::new(Arc::clone(&mgr), 0);
        let mut live: Vec<(PmAddr, u64)> = Vec::new();
        for op in script {
            match op {
                Op::Alloc(size) => {
                    let addr = a.alloc(size).unwrap();
                    prop_assert_eq!(addr.offset() % 256, 0);
                    let cap = mgr.block_size(addr).unwrap();
                    prop_assert!(cap >= size);
                    live.push((addr, cap));
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (addr, _) = live.swap_remove(i % live.len());
                        a.free(addr).unwrap();
                    }
                }
            }
            // Disjointness of all live blocks.
            let mut spans: Vec<(u64, u64)> =
                live.iter().map(|(a, c)| (a.offset(), a.offset() + c)).collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap {:?} {:?}", w[0], w[1]);
            }
        }
    }

    /// After a crash and log-driven recovery, exactly the live blocks are
    /// allocated and everything else is reusable.
    #[test]
    fn crash_recovery_matches_live_set(script in ops()) {
        let pm = Arc::new(PmRegion::with_crash_tracking(32 * CHUNK_SIZE as usize));
        let mgr = Arc::new(ChunkManager::format(Arc::clone(&pm), PmAddr(0), 32));
        let mut a = CoreAllocator::new(Arc::clone(&mgr), 0);
        let mut live: HashMap<u64, u64> = HashMap::new();
        for op in script {
            match op {
                Op::Alloc(size) => {
                    let addr = a.alloc(size).unwrap();
                    live.insert(addr.offset(), size);
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let key = *live.keys().nth(i % live.len()).unwrap();
                        live.remove(&key);
                        a.free(PmAddr(key)).unwrap();
                    }
                }
            }
        }
        drop(a);
        drop(mgr);
        pm.simulate_crash();

        let mgr = ChunkManager::recover(Arc::clone(&pm), PmAddr(0), 32);
        for &addr in live.keys() {
            mgr.mark_allocated(PmAddr(addr)).unwrap();
        }
        mgr.finish_recovery();
        // Every live block is findable with a plausible capacity…
        for (&addr, &size) in &live {
            prop_assert!(mgr.block_size(PmAddr(addr)).unwrap() >= size);
        }
        // …and can be freed exactly once.
        for &addr in live.keys() {
            mgr.free_block(PmAddr(addr)).unwrap();
        }
        let s = mgr.stats();
        prop_assert_eq!(s.live_blocks, 0);
    }
}
