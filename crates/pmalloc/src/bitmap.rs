//! A fixed-size allocation bitmap.

/// A fixed-capacity bitmap tracking which blocks of a chunk are in use.
///
/// Lives in DRAM during normal operation (the "lazy persist" in the crate
/// name); it is serialized to the chunk header only on clean shutdown and
/// reconstructed from the operation log after a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    bits: u32,
    used: u32,
    /// Search hint: first word that may contain a free bit.
    hint: u32,
}

impl Bitmap {
    /// Creates an all-free bitmap of `bits` blocks.
    pub fn new(bits: u32) -> Self {
        Bitmap {
            words: vec![0; bits.div_ceil(64) as usize],
            bits,
            used: 0,
            hint: 0,
        }
    }

    /// Number of blocks tracked.
    pub fn capacity(&self) -> u32 {
        self.bits
    }

    /// Number of allocated blocks.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Number of free blocks.
    pub fn free(&self) -> u32 {
        self.bits - self.used
    }

    /// Is block `i` allocated?
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_set(&self, i: u32) -> bool {
        assert!(i < self.bits);
        self.words[(i / 64) as usize] & (1 << (i % 64)) != 0
    }

    /// Allocates the first free block, returning its index.
    pub fn alloc_first(&mut self) -> Option<u32> {
        let start = self.hint as usize;
        for (off, w) in self.words[start..].iter().enumerate() {
            let wi = start + off;
            // Mask out the tail bits beyond `bits` in the last word.
            let valid = if wi as u32 == self.bits / 64 && !self.bits.is_multiple_of(64) {
                (1u64 << (self.bits % 64)) - 1
            } else {
                u64::MAX
            };
            let free = !w & valid;
            if free != 0 {
                let bit = free.trailing_zeros();
                let i = wi as u32 * 64 + bit;
                self.words[wi] |= 1 << bit;
                self.used += 1;
                self.hint = wi as u32;
                return Some(i);
            }
        }
        None
    }

    /// Marks block `i` allocated. Returns `false` if it already was.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: u32) -> bool {
        assert!(i < self.bits);
        let w = (i / 64) as usize;
        let mask = 1u64 << (i % 64);
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.used += 1;
        true
    }

    /// Frees block `i`. Returns `false` if it was already free.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn clear(&mut self, i: u32) -> bool {
        assert!(i < self.bits);
        let w = (i / 64) as usize;
        let mask = 1u64 << (i % 64);
        if self.words[w] & mask == 0 {
            return false;
        }
        self.words[w] &= !mask;
        self.used -= 1;
        self.hint = self.hint.min(i / 64);
        true
    }

    /// Serializes to little-endian bytes (for the lazy shutdown persist).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 8);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Reconstructs from bytes written by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bits: u32, bytes: &[u8]) -> Self {
        let mut bm = Bitmap::new(bits);
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            if i >= bm.words.len() {
                break;
            }
            // pmlint: allow(no-unwrap) — chunks_exact(8) yields 8-byte slices.
            bm.words[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        bm.used = bm.words.iter().map(|w| w.count_ones()).sum();
        bm.hint = 0;
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_fills_in_order_then_exhausts() {
        let mut bm = Bitmap::new(130);
        for expect in 0..130 {
            assert_eq!(bm.alloc_first(), Some(expect));
        }
        assert_eq!(bm.alloc_first(), None);
        assert_eq!(bm.used(), 130);
        assert_eq!(bm.free(), 0);
    }

    #[test]
    fn clear_allows_reuse_of_lowest() {
        let mut bm = Bitmap::new(64);
        for _ in 0..64 {
            bm.alloc_first();
        }
        assert!(bm.clear(7));
        assert!(bm.clear(3));
        assert!(!bm.clear(3), "double free detected");
        assert_eq!(bm.alloc_first(), Some(3));
        assert_eq!(bm.alloc_first(), Some(7));
    }

    #[test]
    fn set_reports_prior_state() {
        let mut bm = Bitmap::new(10);
        assert!(bm.set(9));
        assert!(!bm.set(9));
        assert!(bm.is_set(9));
        assert!(!bm.is_set(0));
    }

    #[test]
    fn byte_round_trip() {
        let mut bm = Bitmap::new(100);
        for i in [0, 5, 63, 64, 99] {
            bm.set(i);
        }
        let bytes = bm.to_bytes();
        let back = Bitmap::from_bytes(100, &bytes);
        assert_eq!(back, {
            let mut b = bm.clone();
            b.hint = 0;
            b
        });
        assert_eq!(back.used(), 5);
    }

    #[test]
    fn tail_word_bits_do_not_leak() {
        // capacity 70: the second word has only 6 valid bits.
        let mut bm = Bitmap::new(70);
        let mut got = Vec::new();
        while let Some(i) = bm.alloc_first() {
            got.push(i);
        }
        assert_eq!(got.len(), 70);
        assert_eq!(*got.last().unwrap(), 69);
    }
}
