//! Allocation size classes.
//!
//! Every class is a multiple of [`BLOCK_ALIGN`] (256 B) so that block
//! addresses always have their low 8 bits zero — the operation log stores
//! block pointers in 40 bits by dismissing those bits (paper §3.2, Fig. 3).

use crate::chunk::{CHUNK_HEADER, CHUNK_SIZE};

/// Alignment (and minimum granularity) of every allocated block.
pub const BLOCK_ALIGN: u64 = 256;

/// The size classes, ascending. Roughly ×1.5 steps, all multiples of 256 B,
/// from 512 B (the allocator only ever stores records larger than 256 B) up
/// to half a chunk.
pub fn class_sizes() -> &'static [u64] {
    const CLASSES: &[u64] = &[
        512, 768, 1024, 1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384, 24576, 32768, 49152,
        65536, 98304, 131072, 196608, 262144, 393216, 524288, 786432, 1048576, 2097152,
    ];
    CLASSES
}

/// Returns `(class_index, class_size)` of the smallest class that fits
/// `size`, or `None` when the request needs whole chunks.
pub fn class_for(size: u64) -> Option<(usize, u64)> {
    let usable = CHUNK_SIZE - CHUNK_HEADER;
    class_sizes()
        .iter()
        .enumerate()
        .find(|(_, &c)| c >= size && c <= usable)
        .map(|(i, &c)| (i, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_aligned_and_fit_a_chunk() {
        let cs = class_sizes();
        for w in cs.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &c in cs {
            assert_eq!(c % BLOCK_ALIGN, 0, "class {c} not 256 B aligned");
            assert!(c <= CHUNK_SIZE - CHUNK_HEADER);
        }
    }

    #[test]
    fn class_for_picks_smallest_fit() {
        assert_eq!(class_for(1), Some((0, 512)));
        assert_eq!(class_for(512), Some((0, 512)));
        assert_eq!(class_for(513), Some((1, 768)));
        assert_eq!(class_for(2097152), Some((23, 2097152)));
        assert_eq!(class_for(2097153), None); // needs huge chunks
    }

    #[test]
    fn internal_fragmentation_bounded() {
        // ×1.5 spacing keeps waste under ~50 %.
        for size in (257..2_000_000).step_by(997) {
            let (_, c) = class_for(size).unwrap();
            assert!(c < size * 2, "class {c} too large for {size}");
        }
    }
}
