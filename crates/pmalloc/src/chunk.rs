//! Chunk management: the shared, crash-recoverable part of the allocator.

use std::sync::Arc;

use parking_lot::Mutex;
use pmem::{PmAddr, PmRegion};

use crate::bitmap::Bitmap;
use crate::classes::class_sizes;
use crate::error::AllocError;

/// Size of one PM chunk (paper §3.2: the NVM space is cut into 4 MB chunks).
pub const CHUNK_SIZE: u64 = 4 << 20;

/// Reserved header space at the start of every chunk: magic, class size and
/// the lazily persisted bitmap.
pub const CHUNK_HEADER: u64 = 4096;

const MAGIC_CLASS: u64 = 0x464c_4154_434c_5321; // "FLATCLS!"
const MAGIC_HUGE: u64 = 0x464c_4154_4855_4745; // "FLATHUGE"
const MAGIC_RESERVED: u64 = 0x464c_4154_5253_5644; // "FLATRSVD"

const OFF_MAGIC: u64 = 0;
const OFF_CLASS: u64 = 8; // class size, or chunk count for huge heads
const OFF_HUGE_SIZE: u64 = 16; // requested byte size of a huge allocation
const OFF_BITMAP: u64 = 64;

#[derive(Debug)]
enum ChunkMeta {
    Free,
    Class(ClassChunk),
    HugeHead {
        nchunks: u32,
        size: u64,
        live: bool,
    },
    HugeTail,
    /// Handed out whole via [`ChunkManager::take_raw_chunk`]; the operation
    /// log manages its contents (the manager only remembers it is taken).
    Reserved,
}

#[derive(Debug)]
struct ClassChunk {
    class_idx: usize,
    class: u64,
    used: Bitmap,
    /// Core that may allocate from this chunk; `u32::MAX` = ownerless
    /// (freshly recovered).
    owner: u32,
}

fn blocks_per_chunk(class: u64) -> u32 {
    ((CHUNK_SIZE - CHUNK_HEADER) / class) as u32
}

#[derive(Debug)]
struct FreeState {
    free: Vec<bool>,
    count: u32,
    hint: u32,
}

/// Point-in-time occupancy counters for a [`ChunkManager`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkStats {
    /// Total chunks managed.
    pub total: u32,
    /// Chunks on the free list.
    pub free: u32,
    /// Chunks formatted to a size class.
    pub class: u32,
    /// Chunks consumed by huge allocations (heads + tails).
    pub huge: u32,
    /// Chunks reserved for external management (operation-log chunks).
    pub reserved: u32,
    /// Allocated blocks across all class chunks.
    pub live_blocks: u64,
}

/// The shared chunk manager: owns the PM range, the free-chunk list and the
/// per-chunk metadata (including the DRAM bitmaps).
///
/// Thread-safe; per-core fast paths go through
/// [`CoreAllocator`](crate::CoreAllocator), which caches partially filled
/// chunks so the free list is only touched when a fresh chunk is needed.
pub struct ChunkManager {
    pm: Arc<PmRegion>,
    base: PmAddr,
    nchunks: u32,
    slots: Vec<Mutex<ChunkMeta>>,
    freelist: Mutex<FreeState>,
    /// Ablation switch: persist the bitmap on every alloc/free, like a
    /// conventional PM allocator, instead of lazily (paper §3.2).
    eager_persist: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for ChunkManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkManager")
            .field("base", &self.base)
            .field("nchunks", &self.nchunks)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ChunkManager {
    /// Formats `nchunks` fresh chunks starting at `base` (which must be
    /// 4 MB-aligned). Erases any previous chunk headers in the range.
    ///
    /// # Panics
    ///
    /// Panics if `base` is unaligned or the range exceeds the region.
    pub fn format(pm: Arc<PmRegion>, base: PmAddr, nchunks: u32) -> Self {
        assert!(
            base.is_aligned(CHUNK_SIZE),
            "chunk base must be 4 MB aligned"
        );
        assert!(
            base.offset() + nchunks as u64 * CHUNK_SIZE <= pm.len() as u64,
            "chunk range exceeds PM region"
        );
        for i in 0..nchunks {
            let hdr = base + i as u64 * CHUNK_SIZE;
            pm.write_u64(hdr + OFF_MAGIC, 0);
            pm.flush(hdr, 8);
        }
        pm.fence();
        let mut slots = Vec::with_capacity(nchunks as usize);
        slots.resize_with(nchunks as usize, || Mutex::new(ChunkMeta::Free));
        ChunkManager {
            pm,
            base,
            nchunks,
            slots,
            freelist: Mutex::new(FreeState {
                free: vec![true; nchunks as usize],
                count: nchunks,
                hint: 0,
            }),
            eager_persist: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Ablation: when enabled, every allocation and free persists the
    /// touched bitmap byte (flush + fence) like a conventional PM
    /// allocator — the overhead the lazy-persist design removes. Off by
    /// default.
    pub fn set_eager_persist(&self, on: bool) {
        self.eager_persist
            .store(on, std::sync::atomic::Ordering::Relaxed);
    }

    #[inline]
    fn eager_persist_bit(&self, chunk_id: u32, block: u32, set: bool) {
        if !self
            .eager_persist
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            return;
        }
        let byte_addr = self.chunk_base(chunk_id) + OFF_BITMAP + (block / 8) as u64;
        let mut cur = self.pm.read_u8(byte_addr);
        if set {
            cur |= 1 << (block % 8);
        } else {
            cur &= !(1 << (block % 8));
        }
        self.pm.write_u8(byte_addr, cur);
        self.pm.persist(byte_addr, 1);
    }

    /// Reconstructs a manager from PM after a **clean shutdown**: chunk
    /// headers and bitmaps are trusted as persisted by
    /// [`persist_bitmaps`](Self::persist_bitmaps).
    pub fn load_clean(pm: Arc<PmRegion>, base: PmAddr, nchunks: u32) -> Self {
        let mgr = Self::load_headers(pm, base, nchunks, true);
        mgr.rebuild_freelist();
        mgr
    }

    /// Begins crash recovery: chunk headers (persisted at format time) are
    /// read back, but every bitmap starts empty. The caller must then invoke
    /// [`mark_allocated`](Self::mark_allocated) for each live pointer found
    /// in the operation log and finish with
    /// [`finish_recovery`](Self::finish_recovery).
    pub fn recover(pm: Arc<PmRegion>, base: PmAddr, nchunks: u32) -> Self {
        Self::load_headers(pm, base, nchunks, false)
    }

    fn load_headers(pm: Arc<PmRegion>, base: PmAddr, nchunks: u32, trust_bitmaps: bool) -> Self {
        assert!(
            base.is_aligned(CHUNK_SIZE),
            "chunk base must be 4 MB aligned"
        );
        let mut slots = Vec::with_capacity(nchunks as usize);
        let mut i = 0u32;
        while i < nchunks {
            let hdr = base + i as u64 * CHUNK_SIZE;
            let magic = pm.read_u64(hdr + OFF_MAGIC);
            match magic {
                MAGIC_CLASS => {
                    let class = pm.read_u64(hdr + OFF_CLASS);
                    let class_idx = class_sizes().iter().position(|&c| c == class);
                    match class_idx {
                        Some(class_idx) => {
                            let bits = blocks_per_chunk(class);
                            let used = if trust_bitmaps {
                                let bytes =
                                    pm.read_vec(hdr + OFF_BITMAP, bits.div_ceil(8) as usize + 8);
                                Bitmap::from_bytes(bits, &bytes)
                            } else {
                                Bitmap::new(bits)
                            };
                            slots.push(Mutex::new(ChunkMeta::Class(ClassChunk {
                                class_idx,
                                class,
                                used,
                                owner: u32::MAX,
                            })));
                        }
                        None => slots.push(Mutex::new(ChunkMeta::Free)),
                    }
                    i += 1;
                }
                MAGIC_HUGE => {
                    let n = pm.read_u64(hdr + OFF_CLASS) as u32;
                    let size = pm.read_u64(hdr + OFF_HUGE_SIZE);
                    let n = n.min(nchunks - i).max(1);
                    slots.push(Mutex::new(ChunkMeta::HugeHead {
                        nchunks: n,
                        size,
                        // Clean shutdown: a huge header means live. Crash:
                        // liveness proven by a log pointer.
                        live: trust_bitmaps,
                    }));
                    for _ in 1..n {
                        slots.push(Mutex::new(ChunkMeta::HugeTail));
                    }
                    i += n;
                }
                MAGIC_RESERVED => {
                    slots.push(Mutex::new(ChunkMeta::Reserved));
                    i += 1;
                }
                _ => {
                    slots.push(Mutex::new(ChunkMeta::Free));
                    i += 1;
                }
            }
        }
        ChunkManager {
            pm,
            base,
            nchunks,
            slots,
            freelist: Mutex::new(FreeState {
                free: vec![false; nchunks as usize],
                count: 0,
                hint: 0,
            }),
            eager_persist: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Marks the block containing `addr` live during crash recovery.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::BadAddress`] if `addr` is not inside a formatted
    /// chunk or not block-aligned, and [`AllocError::DoubleFree`] if the
    /// block was already marked (two live log entries cannot share a block).
    pub fn mark_allocated(&self, addr: PmAddr) -> Result<(), AllocError> {
        let (id, off) = self.locate(addr)?;
        let mut meta = self.slots[id as usize].lock();
        match &mut *meta {
            ChunkMeta::Class(c) => {
                if off < CHUNK_HEADER || !(off - CHUNK_HEADER).is_multiple_of(c.class) {
                    return Err(AllocError::BadAddress {
                        addr: addr.offset(),
                    });
                }
                let block = ((off - CHUNK_HEADER) / c.class) as u32;
                if block >= c.used.capacity() {
                    return Err(AllocError::BadAddress {
                        addr: addr.offset(),
                    });
                }
                if !c.used.set(block) {
                    return Err(AllocError::DoubleFree {
                        addr: addr.offset(),
                    });
                }
                Ok(())
            }
            ChunkMeta::HugeHead { live, .. } => {
                if off != CHUNK_HEADER {
                    return Err(AllocError::BadAddress {
                        addr: addr.offset(),
                    });
                }
                if *live {
                    return Err(AllocError::DoubleFree {
                        addr: addr.offset(),
                    });
                }
                *live = true;
                Ok(())
            }
            _ => Err(AllocError::BadAddress {
                addr: addr.offset(),
            }),
        }
    }

    /// Completes crash recovery: formatted chunks that received no live
    /// marks (and huge allocations never referenced) return to the free
    /// list.
    pub fn finish_recovery(&self) {
        for id in 0..self.nchunks {
            let mut meta = self.slots[id as usize].lock();
            let empty = match &*meta {
                ChunkMeta::Class(c) => c.used.used() == 0,
                ChunkMeta::HugeHead { live: false, .. } => {
                    let n = match &*meta {
                        ChunkMeta::HugeHead { nchunks, .. } => *nchunks,
                        _ => unreachable!(),
                    };
                    *meta = ChunkMeta::Free;
                    drop(meta);
                    for t in 1..n {
                        *self.slots[(id + t) as usize].lock() = ChunkMeta::Free;
                    }
                    continue;
                }
                _ => false,
            };
            if empty {
                *meta = ChunkMeta::Free;
            }
        }
        self.rebuild_freelist();
    }

    fn rebuild_freelist(&self) {
        let mut fl = self.freelist.lock();
        fl.count = 0;
        fl.hint = 0;
        for id in 0..self.nchunks as usize {
            let is_free = matches!(&*self.slots[id].lock(), ChunkMeta::Free);
            fl.free[id] = is_free;
            if is_free {
                fl.count += 1;
            }
        }
    }

    /// Persists every class chunk's bitmap into its header (clean-shutdown
    /// path) and fences once.
    pub fn persist_bitmaps(&self) {
        for id in 0..self.nchunks {
            let meta = self.slots[id as usize].lock();
            if let ChunkMeta::Class(c) = &*meta {
                let hdr = self.base + id as u64 * CHUNK_SIZE;
                let bytes = c.used.to_bytes();
                self.pm.write(hdr + OFF_BITMAP, &bytes);
                self.pm.flush(hdr + OFF_BITMAP, bytes.len());
            }
        }
        self.pm.fence();
    }

    #[inline]
    fn locate(&self, addr: PmAddr) -> Result<(u32, u64), AllocError> {
        let off = addr
            .offset()
            .checked_sub(self.base.offset())
            .ok_or(AllocError::BadAddress {
                addr: addr.offset(),
            })?;
        let id = off / CHUNK_SIZE;
        if id >= self.nchunks as u64 {
            return Err(AllocError::BadAddress {
                addr: addr.offset(),
            });
        }
        Ok((id as u32, off % CHUNK_SIZE))
    }

    fn chunk_base(&self, id: u32) -> PmAddr {
        self.base + id as u64 * CHUNK_SIZE
    }

    pub(crate) fn take_free_chunk(&self) -> Option<u32> {
        let mut fl = self.freelist.lock();
        if fl.count == 0 {
            return None;
        }
        let start = fl.hint as usize;
        let n = fl.free.len();
        for k in 0..n {
            let id = (start + k) % n;
            if fl.free[id] {
                fl.free[id] = false;
                fl.count -= 1;
                fl.hint = id as u32;
                return Some(id as u32);
            }
        }
        None
    }

    fn return_chunks(&self, first: u32, count: u32) {
        let mut fl = self.freelist.lock();
        for id in first..first + count {
            debug_assert!(!fl.free[id as usize]);
            fl.free[id as usize] = true;
            fl.count += 1;
            fl.hint = fl.hint.min(id);
        }
    }

    /// Formats chunk `id` (which must have been taken from the free list) to
    /// `class_idx`, owned by `owner`. Persists the header — the only flush
    /// on the allocator's write path.
    pub(crate) fn format_class_chunk(&self, id: u32, class_idx: usize, owner: u32) {
        let class = class_sizes()[class_idx];
        let hdr = self.chunk_base(id);
        self.pm.write_u64(hdr + OFF_MAGIC, MAGIC_CLASS);
        self.pm.write_u64(hdr + OFF_CLASS, class);
        self.pm.persist(hdr, 16);
        *self.slots[id as usize].lock() = ChunkMeta::Class(ClassChunk {
            class_idx,
            class,
            used: Bitmap::new(blocks_per_chunk(class)),
            owner,
        });
    }

    /// Allocates one block from chunk `id` on behalf of `owner`. Returns
    /// `None` if the chunk is full, was reformatted, or belongs to someone
    /// else (the caller then drops it from its partial list).
    pub(crate) fn alloc_in_chunk(&self, id: u32, class_idx: usize, owner: u32) -> Option<PmAddr> {
        let mut meta = self.slots[id as usize].lock();
        match &mut *meta {
            ChunkMeta::Class(c) if c.class_idx == class_idx && c.owner == owner => {
                let block = c.used.alloc_first()?;
                let class = c.class;
                drop(meta);
                self.eager_persist_bit(id, block, true);
                Some(self.chunk_base(id) + CHUNK_HEADER + block as u64 * class)
            }
            _ => None,
        }
    }

    /// Frees the block at `addr` (class or huge). Safe to call from any
    /// thread, including the log cleaner. Returns the block's byte capacity.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadAddress`] / [`AllocError::DoubleFree`] as for
    /// [`mark_allocated`](Self::mark_allocated).
    pub fn free_block(&self, addr: PmAddr) -> Result<u64, AllocError> {
        let (id, off) = self.locate(addr)?;
        let mut meta = self.slots[id as usize].lock();
        match &mut *meta {
            ChunkMeta::Class(c) => {
                if off < CHUNK_HEADER || !(off - CHUNK_HEADER).is_multiple_of(c.class) {
                    return Err(AllocError::BadAddress {
                        addr: addr.offset(),
                    });
                }
                let block = ((off - CHUNK_HEADER) / c.class) as u32;
                if block >= c.used.capacity() {
                    return Err(AllocError::BadAddress {
                        addr: addr.offset(),
                    });
                }
                if !c.used.clear(block) {
                    return Err(AllocError::DoubleFree {
                        addr: addr.offset(),
                    });
                }
                let class = c.class;
                drop(meta);
                self.eager_persist_bit(id, block, false);
                Ok(class)
            }
            ChunkMeta::HugeHead {
                nchunks,
                size,
                live,
            } => {
                if off != CHUNK_HEADER || !*live {
                    return Err(AllocError::BadAddress {
                        addr: addr.offset(),
                    });
                }
                let (n, sz) = (*nchunks, *size);
                *meta = ChunkMeta::Free;
                drop(meta);
                for t in 1..n {
                    *self.slots[(id + t) as usize].lock() = ChunkMeta::Free;
                }
                self.return_chunks(id, n);
                Ok(sz)
            }
            _ => Err(AllocError::BadAddress {
                addr: addr.offset(),
            }),
        }
    }

    /// Allocates `size` bytes as whole contiguous chunks (requests larger
    /// than a chunk's usable space).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when no contiguous run is free.
    pub fn alloc_huge(&self, size: u64) -> Result<PmAddr, AllocError> {
        let n = (size + CHUNK_HEADER).div_ceil(CHUNK_SIZE) as u32;
        let first = {
            let mut fl = self.freelist.lock();
            let mut run = 0u32;
            let mut found = None;
            for id in 0..self.nchunks {
                if fl.free[id as usize] {
                    run += 1;
                    if run == n {
                        found = Some(id + 1 - n);
                        break;
                    }
                } else {
                    run = 0;
                }
            }
            let first = found.ok_or(AllocError::OutOfMemory { requested: size })?;
            for id in first..first + n {
                fl.free[id as usize] = false;
            }
            fl.count -= n;
            first
        };
        let hdr = self.chunk_base(first);
        self.pm.write_u64(hdr + OFF_MAGIC, MAGIC_HUGE);
        self.pm.write_u64(hdr + OFF_CLASS, n as u64);
        self.pm.write_u64(hdr + OFF_HUGE_SIZE, size);
        self.pm.persist(hdr, 24);
        *self.slots[first as usize].lock() = ChunkMeta::HugeHead {
            nchunks: n,
            size,
            live: true,
        };
        for t in 1..n {
            *self.slots[(first + t) as usize].lock() = ChunkMeta::HugeTail;
        }
        Ok(hdr + CHUNK_HEADER)
    }

    /// Capacity in bytes of the allocated block at `addr`.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadAddress`] if `addr` is not an allocated block.
    pub fn block_size(&self, addr: PmAddr) -> Result<u64, AllocError> {
        let (id, off) = self.locate(addr)?;
        let meta = self.slots[id as usize].lock();
        match &*meta {
            ChunkMeta::Class(c)
                if off >= CHUNK_HEADER && (off - CHUNK_HEADER).is_multiple_of(c.class) =>
            {
                let block = ((off - CHUNK_HEADER) / c.class) as u32;
                if block < c.used.capacity() && c.used.is_set(block) {
                    Ok(c.class)
                } else {
                    Err(AllocError::BadAddress {
                        addr: addr.offset(),
                    })
                }
            }
            ChunkMeta::HugeHead {
                size, live: true, ..
            } if off == CHUNK_HEADER => Ok(*size),
            _ => Err(AllocError::BadAddress {
                addr: addr.offset(),
            }),
        }
    }

    /// Transfers ownership of recovered (ownerless) class chunks whose id
    /// satisfies `id % ncores == core` to `core`, returning
    /// `(chunk_id, class_idx)` pairs for the core's partial lists.
    pub fn adopt_ownerless(&self, core: u32, ncores: u32) -> Vec<(u32, usize)> {
        let mut adopted = Vec::new();
        for id in (core..self.nchunks).step_by(ncores.max(1) as usize) {
            let mut meta = self.slots[id as usize].lock();
            if let ChunkMeta::Class(c) = &mut *meta {
                if c.owner == u32::MAX {
                    c.owner = core;
                    adopted.push((id, c.class_idx));
                }
            }
        }
        adopted
    }

    /// Returns chunk `id` to the free list if it is a fully empty class
    /// chunk owned by `owner`. Returns whether it was released.
    pub(crate) fn release_if_empty(&self, id: u32, owner: u32) -> bool {
        let mut meta = self.slots[id as usize].lock();
        match &*meta {
            ChunkMeta::Class(c) if c.owner == owner && c.used.used() == 0 => {
                *meta = ChunkMeta::Free;
                drop(meta);
                self.return_chunks(id, 1);
                true
            }
            _ => false,
        }
    }

    /// Takes a whole 4 MB chunk out of the pool for external management
    /// (the operation log). The chunk is stamped `Reserved` persistently so
    /// crash recovery never hands it out as free. Returns its base address.
    pub fn take_raw_chunk(&self) -> Option<PmAddr> {
        let id = self.take_free_chunk()?;
        let hdr = self.chunk_base(id);
        self.pm.write_u64(hdr + OFF_MAGIC, MAGIC_RESERVED);
        self.pm.persist(hdr, 8);
        *self.slots[id as usize].lock() = ChunkMeta::Reserved;
        Some(hdr)
    }

    /// Returns a chunk previously taken with
    /// [`take_raw_chunk`](Self::take_raw_chunk) to the free pool.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadAddress`] if `base` is not a reserved chunk base.
    pub fn return_raw_chunk(&self, base: PmAddr) -> Result<(), AllocError> {
        let (id, off) = self.locate(base)?;
        if off != 0 {
            return Err(AllocError::BadAddress {
                addr: base.offset(),
            });
        }
        let mut meta = self.slots[id as usize].lock();
        match &*meta {
            ChunkMeta::Reserved => {
                self.pm.write_u64(base + OFF_MAGIC, 0);
                self.pm.persist(base, 8);
                *meta = ChunkMeta::Free;
                drop(meta);
                self.return_chunks(id, 1);
                Ok(())
            }
            _ => Err(AllocError::BadAddress {
                addr: base.offset(),
            }),
        }
    }

    /// Base addresses of all currently reserved chunks (for leak detection
    /// after crash recovery: reserved chunks unreachable from any log chain
    /// should be returned).
    pub fn reserved_chunks(&self) -> Vec<PmAddr> {
        (0..self.nchunks)
            .filter(|&id| matches!(&*self.slots[id as usize].lock(), ChunkMeta::Reserved))
            .map(|id| self.chunk_base(id))
            .collect()
    }

    /// Number of chunks currently on the free list.
    pub fn free_chunks(&self) -> u32 {
        self.freelist.lock().count
    }

    /// Occupancy counters.
    pub fn stats(&self) -> ChunkStats {
        let mut s = ChunkStats {
            total: self.nchunks,
            free: self.free_chunks(),
            ..Default::default()
        };
        for slot in &self.slots {
            match &*slot.lock() {
                ChunkMeta::Class(c) => {
                    s.class += 1;
                    s.live_blocks += c.used.used() as u64;
                }
                ChunkMeta::HugeHead { .. } | ChunkMeta::HugeTail => s.huge += 1,
                ChunkMeta::Reserved => s.reserved += 1,
                ChunkMeta::Free => {}
            }
        }
        s
    }

    /// The underlying PM region.
    pub fn pm(&self) -> &Arc<PmRegion> {
        &self.pm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(nchunks: u32) -> Arc<ChunkManager> {
        let pm = Arc::new(PmRegion::new((nchunks as usize) * CHUNK_SIZE as usize));
        Arc::new(ChunkManager::format(pm, PmAddr(0), nchunks))
    }

    #[test]
    fn format_leaves_all_free() {
        let m = mgr(8);
        assert_eq!(m.free_chunks(), 8);
        let s = m.stats();
        assert_eq!(s.total, 8);
        assert_eq!(s.free, 8);
    }

    #[test]
    fn huge_alloc_takes_contiguous_chunks() {
        let m = mgr(8);
        let a = m.alloc_huge(6 * 1024 * 1024).unwrap(); // needs 2 chunks
        assert_eq!(m.free_chunks(), 6);
        assert_eq!(m.block_size(a).unwrap(), 6 * 1024 * 1024);
        assert_eq!(m.free_block(a).unwrap(), 6 * 1024 * 1024);
        assert_eq!(m.free_chunks(), 8);
    }

    #[test]
    fn huge_alloc_oom_when_fragmented() {
        let m = mgr(3);
        // Occupy the middle chunk so no 2-run exists.
        m.format_class_chunk(1, 0, 0);
        let middle = m.alloc_in_chunk(1, 0, 0).unwrap();
        // take_free_chunk for id 1 was skipped; mark it non-free manually.
        // (format_class_chunk is normally called after take_free_chunk.)
        let _ = middle;
        {
            let mut fl = m.freelist.lock();
            fl.free[1] = false;
            fl.count -= 1;
        }
        assert_eq!(
            m.alloc_huge(7 * 1024 * 1024),
            Err(AllocError::OutOfMemory {
                requested: 7 * 1024 * 1024
            })
        );
    }

    #[test]
    fn raw_chunks_survive_crash_recovery_as_reserved() {
        let pm = Arc::new(PmRegion::with_crash_tracking(4 * CHUNK_SIZE as usize));
        let m = ChunkManager::format(Arc::clone(&pm), PmAddr(0), 4);
        let raw = m.take_raw_chunk().unwrap();
        assert_eq!(m.free_chunks(), 3);
        drop(m);
        pm.simulate_crash();
        let m = ChunkManager::recover(Arc::clone(&pm), PmAddr(0), 4);
        m.finish_recovery();
        assert_eq!(m.reserved_chunks(), vec![raw]);
        assert_eq!(m.free_chunks(), 3);
        m.return_raw_chunk(raw).unwrap();
        assert_eq!(m.free_chunks(), 4);
        assert!(m.return_raw_chunk(raw).is_err());
    }

    #[test]
    fn free_block_rejects_garbage() {
        let m = mgr(2);
        assert!(matches!(
            m.free_block(PmAddr(12345)),
            Err(AllocError::BadAddress { .. })
        ));
    }
}
