//! Allocator errors.

use std::error::Error;
use std::fmt;

/// Errors returned by the lazy-persist allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No chunk (or contiguous chunk run) is available for the request.
    OutOfMemory {
        /// The requested size in bytes.
        requested: u64,
    },
    /// A zero-sized allocation was requested.
    ZeroSize,
    /// The address passed to `free`/`mark_allocated` does not belong to a
    /// formatted chunk or is not block-aligned.
    BadAddress {
        /// The offending address offset.
        addr: u64,
    },
    /// The block at the address is not currently allocated (double free).
    DoubleFree {
        /// The offending address offset.
        addr: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "out of PM space for allocation of {requested} bytes")
            }
            AllocError::ZeroSize => write!(f, "zero-sized allocation"),
            AllocError::BadAddress { addr } => {
                write!(f, "address {addr:#x} is not an allocated PM block")
            }
            AllocError::DoubleFree { addr } => {
                write!(f, "block at {addr:#x} freed twice")
            }
        }
    }
}

impl Error for AllocError {}
