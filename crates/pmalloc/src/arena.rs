//! Per-core allocation fast path.

use std::sync::Arc;

use pmem::PmAddr;

use crate::chunk::ChunkManager;
use crate::classes::{class_for, class_sizes};
use crate::error::AllocError;

/// A server core's private view of the allocator (paper §3.2: "these 4 MB
/// NVM chunks are partitioned to different server cores").
///
/// The fast path allocates from privately owned, partially filled chunks
/// without touching any global state; the shared [`ChunkManager`] is only
/// consulted when a fresh chunk is needed.
///
/// `CoreAllocator` is intentionally `!Sync`: each server core owns exactly
/// one.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pmem::{PmRegion, PmAddr};
/// use pmalloc::{ChunkManager, CoreAllocator, CHUNK_SIZE};
///
/// let pm = Arc::new(PmRegion::new(8 * CHUNK_SIZE as usize));
/// let mgr = Arc::new(ChunkManager::format(pm, PmAddr(0), 8));
/// let mut a = CoreAllocator::new(mgr, 0);
/// let x = a.alloc(300)?;
/// let y = a.alloc(300)?;
/// assert_ne!(x, y);
/// a.free(x)?;
/// let z = a.alloc(300)?;
/// assert_eq!(x, z, "freed blocks are reused immediately");
/// # Ok::<(), pmalloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct CoreAllocator {
    mgr: Arc<ChunkManager>,
    core: u32,
    /// Per size class: chunk ids owned by this core that may have free
    /// blocks.
    partial: Vec<Vec<u32>>,
}

impl CoreAllocator {
    /// Creates the allocator view for server core `core`.
    pub fn new(mgr: Arc<ChunkManager>, core: u32) -> Self {
        let n = class_sizes().len();
        CoreAllocator {
            mgr,
            core,
            partial: vec![Vec::new(); n],
        }
    }

    /// The shared chunk manager.
    pub fn manager(&self) -> &Arc<ChunkManager> {
        &self.mgr
    }

    /// Allocates a block of at least `size` bytes, 256 B-aligned.
    ///
    /// The allocation itself performs **no flush** (lazy persist); only
    /// formatting a brand-new chunk persists that chunk's header.
    ///
    /// # Errors
    ///
    /// [`AllocError::ZeroSize`] for `size == 0`;
    /// [`AllocError::OutOfMemory`] when no chunk can satisfy the request.
    pub fn alloc(&mut self, size: u64) -> Result<PmAddr, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let Some((class_idx, _)) = class_for(size) else {
            return self.mgr.alloc_huge(size);
        };
        // Try privately owned partial chunks, dropping exhausted ones.
        while let Some(&id) = self.partial[class_idx].last() {
            if let Some(addr) = self.mgr.alloc_in_chunk(id, class_idx, self.core) {
                return Ok(addr);
            }
            self.partial[class_idx].pop();
        }
        // Need a fresh chunk.
        let id = self
            .mgr
            .take_free_chunk()
            .ok_or(AllocError::OutOfMemory { requested: size })?;
        self.mgr.format_class_chunk(id, class_idx, self.core);
        self.partial[class_idx].push(id);
        self.mgr
            .alloc_in_chunk(id, class_idx, self.core)
            .ok_or(AllocError::OutOfMemory { requested: size })
    }

    /// Frees the block at `addr`, returning its byte capacity. The block can
    /// be reused immediately (FlatStore's per-key serialization prevents
    /// read-after-delete anomalies; paper §3.2).
    ///
    /// # Errors
    ///
    /// See [`ChunkManager::free_block`].
    pub fn free(&mut self, addr: PmAddr) -> Result<u64, AllocError> {
        self.mgr.free_block(addr)
    }

    /// Adopts recovered (ownerless) chunks assigned to this core by the
    /// `id % ncores` partitioning, adding them to the partial lists.
    pub fn adopt_recovered(&mut self, ncores: u32) {
        for (id, class_idx) in self.mgr.adopt_ownerless(self.core, ncores) {
            self.partial[class_idx].push(id);
        }
    }

    /// Returns fully empty owned chunks to the shared free list (called by
    /// the log cleaner under space pressure). Returns how many were
    /// released.
    pub fn release_empty_chunks(&mut self) -> u32 {
        let mut released = 0;
        for list in &mut self.partial {
            list.retain(|&id| {
                if self.mgr.release_if_empty(id, self.core) {
                    released += 1;
                    false
                } else {
                    true
                }
            });
        }
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{CHUNK_HEADER, CHUNK_SIZE};
    use pmem::PmRegion;

    fn setup(nchunks: u32) -> (Arc<ChunkManager>, CoreAllocator) {
        let pm = Arc::new(PmRegion::new(nchunks as usize * CHUNK_SIZE as usize));
        let mgr = Arc::new(ChunkManager::format(pm, PmAddr(0), nchunks));
        let a = CoreAllocator::new(Arc::clone(&mgr), 0);
        (mgr, a)
    }

    #[test]
    fn blocks_are_256_aligned_and_disjoint() {
        let (_, mut a) = setup(4);
        let mut got = Vec::new();
        for _ in 0..100 {
            let addr = a.alloc(700).unwrap();
            assert_eq!(addr.offset() % 256, 0);
            got.push(addr.offset());
        }
        got.sort_unstable();
        for w in got.windows(2) {
            assert!(w[1] - w[0] >= 768, "blocks overlap: {} {}", w[0], w[1]);
        }
    }

    #[test]
    fn alloc_does_not_flush_after_first_chunk_format() {
        let (mgr, mut a) = setup(4);
        let _ = a.alloc(1000).unwrap();
        let before = mgr.pm().stats().snapshot();
        for _ in 0..50 {
            a.alloc(1000).unwrap();
        }
        let d = mgr.pm().stats().snapshot().delta(&before);
        assert_eq!(d.flushes, 0, "lazy-persist allocator must not flush");
        assert_eq!(d.fences, 0);
    }

    #[test]
    fn zero_size_rejected() {
        let (_, mut a) = setup(1);
        assert_eq!(a.alloc(0), Err(AllocError::ZeroSize));
    }

    #[test]
    fn exhaustion_reports_oom() {
        let (_, mut a) = setup(1);
        // One chunk of 2 MB blocks: only one fits.
        let first = a.alloc(2 * 1024 * 1024).unwrap();
        assert_eq!(first.offset(), CHUNK_HEADER);
        assert!(matches!(
            a.alloc(2 * 1024 * 1024),
            Err(AllocError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn double_free_detected() {
        let (_, mut a) = setup(2);
        let x = a.alloc(600).unwrap();
        a.free(x).unwrap();
        assert!(matches!(a.free(x), Err(AllocError::DoubleFree { .. })));
    }

    #[test]
    fn two_cores_share_the_manager_without_overlap() {
        let pm = Arc::new(PmRegion::new(8 * CHUNK_SIZE as usize));
        let mgr = Arc::new(ChunkManager::format(pm, PmAddr(0), 8));
        let mut a0 = CoreAllocator::new(Arc::clone(&mgr), 0);
        let mut a1 = CoreAllocator::new(Arc::clone(&mgr), 1);
        let mut all = Vec::new();
        for _ in 0..200 {
            all.push(a0.alloc(500).unwrap().offset());
            all.push(a1.alloc(500).unwrap().offset());
        }
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len, "cores handed out overlapping blocks");
    }

    #[test]
    fn release_empty_chunks_returns_space() {
        let (mgr, mut a) = setup(2);
        let mut blocks = Vec::new();
        for _ in 0..10 {
            blocks.push(a.alloc(3000).unwrap());
        }
        assert_eq!(mgr.free_chunks(), 1);
        for b in blocks {
            a.free(b).unwrap();
        }
        assert_eq!(a.release_empty_chunks(), 1);
        assert_eq!(mgr.free_chunks(), 2);
    }

    #[test]
    fn crash_recovery_rebuilds_bitmaps_from_pointers() {
        let pm = Arc::new(PmRegion::with_crash_tracking(4 * CHUNK_SIZE as usize));
        let mgr = Arc::new(ChunkManager::format(Arc::clone(&pm), PmAddr(0), 4));
        let mut a = CoreAllocator::new(Arc::clone(&mgr), 0);
        let live1 = a.alloc(600).unwrap();
        let live2 = a.alloc(600).unwrap();
        let dead = a.alloc(600).unwrap();
        let huge = mgr.alloc_huge(5 * 1024 * 1024).unwrap();
        drop(a);
        drop(mgr);

        // Crash: bitmaps were never flushed, but chunk headers were.
        pm.simulate_crash();
        let mgr = ChunkManager::recover(Arc::clone(&pm), PmAddr(0), 4);
        // The "log scan" found live1, live2 and huge, but not `dead`.
        mgr.mark_allocated(live1).unwrap();
        mgr.mark_allocated(live2).unwrap();
        mgr.mark_allocated(huge).unwrap();
        mgr.finish_recovery();

        // `dead`'s block is free again: a fresh allocation of the same class
        // from an adopting core reuses it or another block, but never
        // collides with live1/live2.
        let mgr = Arc::new(mgr);
        let mut a = CoreAllocator::new(Arc::clone(&mgr), 0);
        a.adopt_recovered(1);
        let mut fresh = Vec::new();
        for _ in 0..3 {
            fresh.push(a.alloc(600).unwrap());
        }
        assert!(fresh.contains(&dead), "dead block was not reclaimed");
        assert!(!fresh.contains(&live1));
        assert!(!fresh.contains(&live2));
        // Double-marking is rejected.
        assert!(matches!(
            mgr.mark_allocated(live1),
            Err(AllocError::DoubleFree { .. })
        ));
    }

    #[test]
    fn clean_shutdown_round_trip() {
        let pm = Arc::new(PmRegion::new(4 * CHUNK_SIZE as usize));
        let mgr = Arc::new(ChunkManager::format(Arc::clone(&pm), PmAddr(0), 4));
        let mut a = CoreAllocator::new(Arc::clone(&mgr), 0);
        let x = a.alloc(600).unwrap();
        let y = a.alloc(5000).unwrap();
        mgr.persist_bitmaps();
        drop(a);
        drop(mgr);

        let mgr = Arc::new(ChunkManager::load_clean(Arc::clone(&pm), PmAddr(0), 4));
        assert_eq!(mgr.block_size(x).unwrap(), 768);
        assert_eq!(mgr.block_size(y).unwrap(), 6144);
        let s = mgr.stats();
        assert_eq!(s.live_blocks, 2);
        // Freeing still works after reload.
        mgr.free_block(x).unwrap();
        assert!(matches!(
            mgr.free_block(x),
            Err(AllocError::DoubleFree { .. })
        ));
    }
}

#[cfg(test)]
mod eager_tests {
    use super::*;
    use crate::chunk::CHUNK_SIZE;
    use pmem::PmRegion;

    #[test]
    fn eager_persist_flushes_bitmap_per_alloc_and_free() {
        let pm = Arc::new(PmRegion::new(8 * CHUNK_SIZE as usize));
        let mgr = Arc::new(ChunkManager::format(Arc::clone(&pm), PmAddr(0), 8));
        mgr.set_eager_persist(true);
        let mut a = CoreAllocator::new(Arc::clone(&mgr), 0);
        let x = a.alloc(600).unwrap(); // formats a chunk (has its own persist)
        let before = pm.stats().snapshot();
        let y = a.alloc(600).unwrap();
        a.free(x).unwrap();
        a.free(y).unwrap();
        let d = pm.stats().snapshot().delta(&before);
        assert_eq!(d.fences, 3, "one persist per alloc/free");
        assert!(d.flushes >= 3);

        // And the persisted bitmap is consistent with the DRAM state after
        // a crash-free reload of the headers.
        mgr.set_eager_persist(false);
        let before = pm.stats().snapshot();
        let _z = a.alloc(600).unwrap();
        let d = pm.stats().snapshot().delta(&before);
        assert_eq!(d.fences, 0, "lazy mode is back");
    }
}
