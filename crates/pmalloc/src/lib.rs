//! Lazy-persist persistent-memory allocator (FlatStore paper §3.2).
//!
//! FlatStore stores key-value records larger than 256 B out of the operation
//! log, in blocks handed out by this allocator. The allocator's defining
//! property is that its allocation metadata (per-chunk bitmaps) is **not
//! flushed on the allocation fast path**: the operation log already records
//! the address of every live block, so after a crash the bitmaps are
//! reconstructed by scanning the log ([`ChunkManager::mark_allocated`]).
//! This removes one flush+fence from every Put of a large value — one of the
//! paper's three write-reduction techniques.
//!
//! # Structure (Hoard-like)
//!
//! * PM space is cut into 4 MB [`CHUNK_SIZE`] chunks, each 4 MB-aligned.
//! * A chunk is *formatted* to a single size class when first used; the class
//!   is persisted in the chunk header **at format time** (the only flush the
//!   allocator ever issues on its own), so recovery can derive a block index
//!   from any pointer: `chunk = ptr & !(4 MB − 1)`, `block = (ptr − data_base)
//!   / class`.
//! * Each server core owns a [`CoreAllocator`] with private partial chunks,
//!   so the fast path takes no global lock.
//! * Allocations larger than a chunk's usable space take whole contiguous
//!   chunks ("huge" allocations).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pmem::PmRegion;
//! use pmalloc::{ChunkManager, CoreAllocator, CHUNK_SIZE};
//!
//! let pm = Arc::new(PmRegion::new(16 * CHUNK_SIZE as usize));
//! let mgr = Arc::new(ChunkManager::format(pm, pmem::PmAddr(0), 16));
//! let mut alloc = CoreAllocator::new(Arc::clone(&mgr), 0);
//! let block = alloc.alloc(1000)?;
//! assert!(block.offset() % 256 == 0, "blocks are 256 B aligned for 40-bit pointers");
//! alloc.free(block)?;
//! # Ok::<(), pmalloc::AllocError>(())
//! ```

mod arena;
mod bitmap;
mod chunk;
mod classes;
mod error;

pub use arena::CoreAllocator;
pub use bitmap::Bitmap;
pub use chunk::{ChunkManager, ChunkStats, CHUNK_HEADER, CHUNK_SIZE};
pub use classes::{class_for, class_sizes, BLOCK_ALIGN};
pub use error::AllocError;
