//! The routed client: cached routing snapshot, redirect-driven refresh,
//! and the [`KvApi`] surface over the whole cluster.

use std::sync::Arc;

use flatstore::{KvApi, Op, Reply, StoreError, StoreHandle};
use workloads::slot_of_key;

use crate::cluster::ClusterShared;
use crate::table::RoutingSnapshot;

/// Redirect/failover retries before an operation gives up. Each retry
/// refreshes the routing snapshot and group handles, so one flip (or
/// one promotion) costs exactly one extra round trip.
const MAX_RETRIES: usize = 8;

/// A cluster client: routes every [`Op`] by its key's slot, retries
/// through [`StoreError::WrongGroup`] redirects, and fans `Range` across
/// all groups.
///
/// The client deliberately works off a **cached** [`RoutingSnapshot`]
/// (plus cached per-group engine handles) rather than reading the live
/// table — exactly like a remote client would — so the epoch/redirect
/// protocol is genuinely exercised: after a migration flips a slot, the
/// next operation on it is refused with `WrongGroup{epoch}`, the client
/// refreshes, re-routes and succeeds.
///
/// Implements [`KvApi`], so code written against a single engine runs
/// unchanged over the cluster.
pub struct ClusterClient {
    shared: Arc<ClusterShared>,
    snap: RoutingSnapshot,
    handles: Vec<StoreHandle>,
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClient")
            .field("epoch", &self.snap.epoch())
            .field("groups", &self.handles.len())
            .finish()
    }
}

impl ClusterClient {
    pub(crate) fn new(shared: Arc<ClusterShared>) -> Result<ClusterClient, StoreError> {
        let snap = shared.table_snapshot();
        let handles = shared.handles()?;
        Ok(ClusterClient {
            shared,
            snap,
            handles,
        })
    }

    /// The routing epoch this client last refreshed at.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    /// Re-reads the routing table and re-resolves group handles (also
    /// called automatically on redirects and failovers).
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] if a group is out of service.
    pub fn refresh(&mut self) -> Result<(), StoreError> {
        self.shared.stats.client_refreshes.inc();
        self.snap = self.shared.table_snapshot();
        self.handles = self.shared.handles()?;
        Ok(())
    }

    /// Runs `f` against the current route for `key`'s slot, refreshing
    /// and retrying on `WrongGroup` (stale route) or `ShuttingDown`
    /// (failover in progress).
    fn retry<T>(
        &mut self,
        key: u64,
        f: impl Fn(&ClusterShared, &[StoreHandle], u16) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut last = StoreError::ShuttingDown;
        for _ in 0..MAX_RETRIES {
            let slot = slot_of_key(key, self.shared.nslots());
            let gid = self.snap.owner(slot);
            match f(&self.shared, &self.handles, gid) {
                Err(e @ (StoreError::WrongGroup { .. } | StoreError::ShuttingDown)) => {
                    last = e;
                    // A failed refresh (mid-promotion) is retried too —
                    // the stale snapshot stays in place meanwhile.
                    let _ = self.refresh();
                }
                other => return other,
            }
        }
        Err(last)
    }

    /// Routes one operation: point verbs go to their slot's owner,
    /// `Range` fans out across every group with ownership-filtered,
    /// key-merged results.
    ///
    /// # Errors
    ///
    /// Transport-level failures (exhausted redirects, shutdown); the
    /// per-operation outcome rides inside the [`Reply`] like a session
    /// completion.
    pub fn call(&mut self, op: Op) -> Result<Reply, StoreError> {
        match op {
            Op::Put { key, value } => Ok(Reply::Put(self.put(key, &value))),
            Op::Get { key } => Ok(Reply::Get(self.get(key))),
            Op::Delete { key } => Ok(Reply::Delete(self.delete(key))),
            Op::Range { lo, hi, limit } => Ok(Reply::Range(self.range(lo, hi, limit))),
            other => Err(StoreError::InvalidConfig(format!(
                "unroutable operation: {other:?}"
            ))),
        }
    }
}

impl KvApi for ClusterClient {
    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), StoreError> {
        self.retry(key, |shared, handles, gid| {
            shared.put_at(handles, gid, key, value)
        })
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.retry(key, |shared, handles, gid| shared.get_at(handles, gid, key))
    }

    fn delete(&mut self, key: u64) -> Result<bool, StoreError> {
        self.retry(key, |shared, handles, gid| {
            shared.delete_at(handles, gid, key)
        })
    }

    fn range(&mut self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        let mut last = StoreError::ShuttingDown;
        for _ in 0..MAX_RETRIES {
            match self.shared.range_fanout(&self.handles, lo, hi, limit) {
                Err(e @ StoreError::ShuttingDown) => {
                    last = e;
                    let _ = self.refresh();
                }
                other => return other,
            }
        }
        Err(last)
    }
}
