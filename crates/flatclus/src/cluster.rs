//! The cluster: N engine groups, the routing table, per-slot gates, and
//! the group-front operation paths (ownership checks + double-writes).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flatrepl::ReplicatedStore;
use flatstore::{Config, FlatStore, ReplOp, StoreError, StoreHandle};
use parking_lot::{Mutex, RwLock};
use workloads::{slot_of_key, NSLOTS};

use crate::client::ClusterClient;
use crate::migrate::MigrationReport;
use crate::ring::{GroupId, RendezvousRing, SlotRing};
use crate::stats::ClusterStats;
use crate::table::RoutingTable;

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Engine groups (each one FlatStore, or a primary-backup pair when
    /// `replicated`).
    pub groups: usize,
    /// Virtual slots ([`NSLOTS`] is the production default; tests shrink
    /// it so one slot holds a meaningful share of the keyspace).
    pub nslots: usize,
    /// Pair every group with a passive backup ([`ReplicatedStore`]);
    /// required for [`Cluster::fail_group_primary`].
    pub replicated: bool,
    /// The per-group engine configuration (every group gets a clone).
    pub engine: Config,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            groups: 1,
            nslots: NSLOTS,
            replicated: false,
            engine: Config::default(),
        }
    }
}

/// One group's engine: a bare store or a replicated pair. The variants
/// expose the same blocking surface, so routing code is agnostic to
/// whether a group has a backup (a promoted group degrades to `Single`
/// until an operator re-pairs it).
pub(crate) enum GroupEngine {
    Single(FlatStore),
    Replicated(ReplicatedStore),
}

impl GroupEngine {
    pub(crate) fn handle(&self) -> StoreHandle {
        match self {
            GroupEngine::Single(s) => s.handle(),
            GroupEngine::Replicated(r) => r.handle(),
        }
    }

    pub(crate) fn barrier(&self) {
        match self {
            GroupEngine::Single(s) => s.barrier(),
            GroupEngine::Replicated(r) => r.barrier(),
        }
    }

    pub(crate) fn repl_suffix(
        &self,
        core: usize,
        from: pmem::PmAddr,
        f: impl FnMut(ReplOp),
    ) -> Result<pmem::PmAddr, StoreError> {
        match self {
            GroupEngine::Single(s) => s.repl_suffix(core, from, f),
            GroupEngine::Replicated(r) => r.repl_suffix(core, from, f),
        }
    }

    fn shutdown(self) -> Result<(), StoreError> {
        match self {
            GroupEngine::Single(s) => s.shutdown().map(|_| ()),
            GroupEngine::Replicated(r) => r.shutdown().map(|_| ()),
        }
    }
}

/// Everything the groups, migrator and clients share.
pub(crate) struct ClusterShared {
    pub(crate) cfg: ClusterConfig,
    pub(crate) table: RoutingTable,
    /// One gate per slot. Normal operations hold the read side across
    /// their ownership check *and* engine call; double-writes and the
    /// migration flip hold the write side. The flip therefore linearizes
    /// against every in-flight operation on the migrating slot — and
    /// only that slot.
    pub(crate) gates: Vec<RwLock<()>>,
    /// `None` only transiently inside [`Cluster::fail_group_primary`]
    /// (which holds the vector's write lock throughout).
    pub(crate) groups: RwLock<Vec<Option<GroupEngine>>>,
    /// Bumped on every failover of the indexed group; the migrator
    /// re-checks it each round so suffix cursors never cross engines.
    pub(crate) incarnation: Vec<AtomicU64>,
    pub(crate) stats: Arc<ClusterStats>,
    /// Serializes migrations (one slot in flight at a time).
    pub(crate) migration: Mutex<()>,
}

impl ClusterShared {
    pub(crate) fn nslots(&self) -> usize {
        self.cfg.nslots
    }

    pub(crate) fn table_snapshot(&self) -> crate::table::RoutingSnapshot {
        self.table.snapshot()
    }

    fn ngroups(&self) -> usize {
        self.incarnation.len()
    }

    /// A fresh handle onto group `gid`'s engine.
    pub(crate) fn group_handle(&self, gid: GroupId) -> Result<StoreHandle, StoreError> {
        let groups = self.groups.read();
        let engine = groups
            .get(gid as usize)
            .ok_or_else(|| StoreError::InvalidConfig(format!("no group {gid}")))?;
        Ok(engine.as_ref().ok_or(StoreError::ShuttingDown)?.handle())
    }

    /// One handle per group, for a client's route cache.
    pub(crate) fn handles(&self) -> Result<Vec<StoreHandle>, StoreError> {
        let groups = self.groups.read();
        groups
            .iter()
            .map(|g| Ok(g.as_ref().ok_or(StoreError::ShuttingDown)?.handle()))
            .collect()
    }

    fn wrong_group(&self) -> StoreError {
        self.stats.redirects.inc();
        StoreError::WrongGroup {
            epoch: self.table.epoch(),
        }
    }

    fn handle_of<'h>(
        &self,
        handles: &'h [StoreHandle],
        gid: GroupId,
    ) -> Result<&'h StoreHandle, StoreError> {
        // A short handle vector means the client's cache predates a
        // topology it cannot know about; treat as a stale route.
        handles.get(gid as usize).ok_or(StoreError::ShuttingDown)
    }

    /// A write against group `gid` (the client's routed owner):
    /// ownership-checked under the slot gate, double-written while the
    /// slot is migrating. `apply` runs the verb against one group's
    /// handle; it must be idempotent (it re-runs on the destination).
    fn write_at<T>(
        &self,
        handles: &[StoreHandle],
        gid: GroupId,
        key: u64,
        apply: impl Fn(&StoreHandle) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let slot = slot_of_key(key, self.nslots());
        loop {
            let (owner, migrating) = self.table.route(slot);
            if owner != gid {
                return Err(self.wrong_group());
            }
            if migrating.is_some() {
                // Exclusive gate: double-writes to one slot serialize, so
                // the destination observes them in version order.
                let _g = self.gates[slot].write();
                let (owner, migrating) = self.table.route(slot);
                if owner != gid {
                    return Err(self.wrong_group());
                }
                // Source first: the ack's durability guarantee (primary +
                // its backup) holds before the destination copy exists,
                // so an abort loses nothing that was acked.
                let out = apply(self.handle_of(handles, gid)?)?;
                if let Some(dst) = migrating {
                    apply(self.handle_of(handles, dst)?)?;
                    self.stats.double_writes.inc();
                }
                return Ok(out);
            }
            let _g = self.gates[slot].read();
            let (owner, migrating) = self.table.route(slot);
            if owner != gid {
                return Err(self.wrong_group());
            }
            if migrating.is_some() {
                continue; // marked since the peek: redo as a double-write
            }
            return apply(self.handle_of(handles, gid)?);
        }
    }

    /// Stores `value` under `key` at group `gid`.
    pub(crate) fn put_at(
        &self,
        handles: &[StoreHandle],
        gid: GroupId,
        key: u64,
        value: &[u8],
    ) -> Result<(), StoreError> {
        self.write_at(handles, gid, key, |h| h.put(key, value))
    }

    /// Deletes `key` at group `gid`; returns whether the source had it.
    pub(crate) fn delete_at(
        &self,
        handles: &[StoreHandle],
        gid: GroupId,
        key: u64,
    ) -> Result<bool, StoreError> {
        self.write_at(handles, gid, key, |h| h.delete(key))
    }

    /// Reads `key` from group `gid`. Reads hold the slot gate's read
    /// side across check + execute, so a concurrent flip either happens
    /// entirely before (read redirects) or entirely after (read served
    /// by the still-owner, whose value the flip's convergence proof
    /// covers) — a completed read is never stale past the flip epoch.
    pub(crate) fn get_at(
        &self,
        handles: &[StoreHandle],
        gid: GroupId,
        key: u64,
    ) -> Result<Option<Vec<u8>>, StoreError> {
        let slot = slot_of_key(key, self.nslots());
        let _g = self.gates[slot].read();
        let (owner, _) = self.table.route(slot);
        if owner != gid {
            return Err(self.wrong_group());
        }
        self.handle_of(handles, gid)?.get(key)
    }

    /// Range scan fanned across every group, merged by key. Results are
    /// filtered by *current* slot ownership so keys a finished migration
    /// left un-purged at their old home do not appear twice; across a
    /// concurrent flip the scan is weakly consistent (like any
    /// multi-shard scan without a cluster-wide snapshot).
    pub(crate) fn range_fanout(
        &self,
        handles: &[StoreHandle],
        lo: u64,
        hi: u64,
        limit: usize,
    ) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        let snap = self.table.snapshot();
        let mut merged: Vec<(u64, Vec<u8>)> = Vec::new();
        for (gid, h) in handles.iter().enumerate() {
            for (k, v) in h.range(lo, hi, limit)? {
                if usize::from(snap.owner(slot_of_key(k, self.nslots()))) == gid {
                    merged.push((k, v));
                }
            }
        }
        merged.sort_by_key(|&(k, _)| k);
        merged.dedup_by_key(|&mut (k, _)| k);
        merged.truncate(limit);
        Ok(merged)
    }
}

/// A running cluster of engine groups behind one routing table.
///
/// See the crate docs for the architecture; [`client`](Cluster::client)
/// opens routed [`ClusterClient`]s, [`migrate`](Cluster::migrate) moves
/// a slot live.
pub struct Cluster {
    shared: Arc<ClusterShared>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("groups", &self.shared.ngroups())
            .field("nslots", &self.shared.nslots())
            .field("epoch", &self.shared.table.epoch())
            .finish()
    }
}

impl Cluster {
    /// Creates `cfg.groups` fresh groups behind a [`RendezvousRing`]
    /// slot assignment.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] for an empty cluster; otherwise as
    /// for [`FlatStore::create`] / [`ReplicatedStore::create`].
    pub fn create(cfg: ClusterConfig) -> Result<Cluster, StoreError> {
        Cluster::create_with_ring(cfg, &RendezvousRing)
    }

    /// Creates a cluster whose initial slot placement comes from `ring`.
    ///
    /// # Errors
    ///
    /// As for [`create`](Cluster::create).
    pub fn create_with_ring(
        cfg: ClusterConfig,
        ring: &dyn SlotRing,
    ) -> Result<Cluster, StoreError> {
        if cfg.groups == 0 || cfg.groups > usize::from(GroupId::MAX) {
            return Err(StoreError::InvalidConfig(
                "cluster needs 1..=65535 groups".into(),
            ));
        }
        if cfg.nslots == 0 {
            return Err(StoreError::InvalidConfig(
                "cluster needs at least one slot".into(),
            ));
        }
        let ids: Vec<GroupId> = (0..cfg.groups as u16).collect();
        let owners = ring.assign(cfg.nslots, &ids);
        let mut groups = Vec::with_capacity(cfg.groups);
        for _ in 0..cfg.groups {
            groups.push(Some(if cfg.replicated {
                GroupEngine::Replicated(ReplicatedStore::create(cfg.engine.clone())?)
            } else {
                GroupEngine::Single(FlatStore::create(cfg.engine.clone())?)
            }));
        }
        let nslots = cfg.nslots;
        let ngroups = cfg.groups;
        Ok(Cluster {
            shared: Arc::new(ClusterShared {
                cfg,
                table: RoutingTable::new(owners),
                gates: (0..nslots).map(|_| RwLock::new(())).collect(),
                groups: RwLock::new(groups),
                incarnation: (0..ngroups).map(|_| AtomicU64::new(0)).collect(),
                stats: Arc::new(ClusterStats::default()),
                migration: Mutex::new(()),
            }),
        })
    }

    /// Opens a routed client (its own routing snapshot and per-group
    /// engine handles).
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] if a group is gone.
    pub fn client(&self) -> Result<ClusterClient, StoreError> {
        ClusterClient::new(Arc::clone(&self.shared))
    }

    /// The slot `key` routes to.
    pub fn slot_of(&self, key: u64) -> usize {
        slot_of_key(key, self.shared.nslots())
    }

    /// The group currently owning `slot`.
    pub fn owner_of(&self, slot: usize) -> GroupId {
        self.shared.table.owner(slot)
    }

    /// The current routing epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.table.epoch()
    }

    /// Group count.
    pub fn ngroups(&self) -> usize {
        self.shared.ngroups()
    }

    /// Virtual-slot count.
    pub fn nslots(&self) -> usize {
        self.shared.nslots()
    }

    /// Cluster counters.
    pub fn stats(&self) -> &ClusterStats {
        &self.shared.stats
    }

    /// Migrates `slot` to group `to`, live (see the crate docs for the
    /// protocol). Blocks until the flip (or abort); writes to the slot
    /// keep flowing throughout except during the final flip window.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] for an unknown slot/group;
    /// [`StoreError::ShuttingDown`] if the source failed over
    /// mid-transfer (the migration aborted; the source group — possibly
    /// freshly promoted — still owns the slot); `Corrupt` if the
    /// source's cleaner invalidated the suffix cursors (abort, retry).
    pub fn migrate(&self, slot: usize, to: GroupId) -> Result<MigrationReport, StoreError> {
        self.shared.migrate_slot(slot, to)
    }

    /// Kills group `gid`'s primary abruptly and promotes its backup
    /// (FlatStore's ordinary full-scan recovery over the backup image).
    /// The group serves again as an unreplicated `Single` engine; every
    /// op acked before the failure survives. Any migration sourced from
    /// `gid` aborts. Client handles onto the dead primary return
    /// [`StoreError::ShuttingDown`] and refresh on retry.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] if the group is unknown or has no
    /// backup; promotion failures leave the group out of service.
    pub fn fail_group_primary(&self, gid: GroupId) -> Result<(), StoreError> {
        let mut groups = self.shared.groups.write();
        let slot = groups
            .get_mut(gid as usize)
            .ok_or_else(|| StoreError::InvalidConfig(format!("no group {gid}")))?;
        let engine = slot.take().ok_or(StoreError::ShuttingDown)?;
        match engine {
            GroupEngine::Replicated(rs) => {
                // Invalidate suffix cursors before the new engine exists:
                // a migrator observing the bump never walks the promoted
                // engine's (differently-chained) logs with old cursors.
                self.shared.incarnation[gid as usize].fetch_add(1, Ordering::AcqRel);
                let (_dead, backup) = rs.fail_primary();
                let promoted = backup.promote(self.shared.cfg.engine.clone())?;
                *slot = Some(GroupEngine::Single(promoted));
                Ok(())
            }
            single => {
                *slot = Some(single);
                Err(StoreError::InvalidConfig(format!(
                    "group {gid} has no backup to promote"
                )))
            }
        }
    }

    /// Quiesces every group (all acked operations fully applied).
    pub fn barrier(&self) {
        let groups = self.shared.groups.read();
        for g in groups.iter().flatten() {
            g.barrier();
        }
    }

    /// A cluster-level stats report: routing state plus the migration /
    /// redirect counters. (Per-group engine internals stay available on
    /// each group's own `stats_report`.)
    pub fn stats_report(&self) -> obs::StatsReport {
        let mut r = obs::StatsReport::new("flatclus");
        let mut per_group = vec![0u64; self.shared.ngroups()];
        for slot in 0..self.shared.nslots() {
            per_group[usize::from(self.shared.table.owner(slot))] += 1;
        }
        {
            let sec = r.section("routing");
            sec.row("groups", self.shared.ngroups() as u64)
                .row("nslots", self.shared.nslots() as u64)
                .row("epoch", self.shared.table.epoch());
            for (gid, n) in per_group.iter().enumerate() {
                sec.row(format!("slots_group_{gid}"), *n);
            }
        }
        self.shared.stats.fill_report(&mut r);
        r
    }

    /// Clean shutdown of every group (primaries drain, then backups).
    ///
    /// # Errors
    ///
    /// The first engine shutdown failure; later groups still attempt to
    /// stop.
    pub fn shutdown(self) -> Result<(), StoreError> {
        let mut first_err = None;
        let mut groups = self.shared.groups.write();
        for g in groups.iter_mut() {
            if let Some(engine) = g.take() {
                if let Err(e) = engine.shutdown() {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}
