//! Slot → group assignment: the pluggable ring.
//!
//! The routing *table* (who owns slot S right now) is mutable state that
//! migration flips one slot at a time; the *ring* is the pure placement
//! policy that decides where slots should live for a given group set.
//! [`RendezvousRing`] (highest-random-weight hashing) is the default:
//! every slot independently ranks all groups by a keyed hash and picks
//! the maximum, which gives near-uniform balance over 1024 slots and the
//! minimal-movement property by construction — when a group joins, the
//! only slots that move are those the new group now wins; when a group
//! leaves, the only slots that move are those it owned.

/// A group's identity inside one cluster (index into the group vector).
pub type GroupId = u16;

/// A slot-placement policy: maps every virtual slot onto one of the
/// given groups.
pub trait SlotRing: Send + Sync {
    /// Assigns each slot in `0..nslots` to one of `groups`.
    ///
    /// `groups` lists the live group ids (non-empty, distinct, in any
    /// order); the result has length `nslots` and only contains ids from
    /// `groups`. Must be deterministic: the same inputs yield the same
    /// assignment on every call and every host.
    fn assign(&self, nslots: usize, groups: &[GroupId]) -> Vec<GroupId>;
}

/// Highest-random-weight (rendezvous) hashing.
#[derive(Debug, Clone, Copy, Default)]
pub struct RendezvousRing;

impl SlotRing for RendezvousRing {
    fn assign(&self, nslots: usize, groups: &[GroupId]) -> Vec<GroupId> {
        // The weight function and argmax live in `workloads` so the DES
        // (`simkv`) computes per-group load shares with exactly this
        // placement.
        workloads::rendezvous_assign(nslots, groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_group_used() {
        let groups: Vec<GroupId> = (0..4).collect();
        let assign = RendezvousRing.assign(1024, &groups);
        for g in groups {
            assert!(assign.contains(&g), "group {g} owns no slots");
        }
    }
}
