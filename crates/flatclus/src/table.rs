//! The versioned routing table: slot → owner, with migration marks and
//! the redirect epoch.

use std::sync::atomic::{AtomicU64, Ordering};

use flatstore::StoreError;
use parking_lot::RwLock;

use crate::ring::GroupId;

/// One slot's routing state.
#[derive(Debug, Clone, Copy)]
struct SlotState {
    /// The group clients must send this slot's operations to.
    owner: GroupId,
    /// `Some(dst)` while a migration is in flight: the owner
    /// double-writes every acked write to `dst` until the flip.
    migrating_to: Option<GroupId>,
}

/// The cluster's authoritative slot → group map.
///
/// The **epoch** is a monotonic version of the ownership function: it
/// bumps exactly when some slot's owner changes (the migration flip).
/// Group fronts quote it in [`StoreError::WrongGroup`] refusals, and
/// clients compare it against their cached [`RoutingSnapshot`] to decide
/// a refresh is worth retrying.
#[derive(Debug)]
pub struct RoutingTable {
    epoch: AtomicU64,
    slots: RwLock<Vec<SlotState>>,
}

impl RoutingTable {
    /// Builds a table from an initial assignment (one owner per slot).
    pub fn new(owners: Vec<GroupId>) -> RoutingTable {
        RoutingTable {
            epoch: AtomicU64::new(1),
            slots: RwLock::new(
                owners
                    .into_iter()
                    .map(|owner| SlotState {
                        owner,
                        migrating_to: None,
                    })
                    .collect(),
            ),
        }
    }

    /// The number of virtual slots.
    pub fn nslots(&self) -> usize {
        self.slots.read().len()
    }

    /// The current routing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The group currently owning `slot`.
    pub fn owner(&self, slot: usize) -> GroupId {
        self.slots.read()[slot].owner
    }

    /// `(owner, migrating_to)` for `slot`, read atomically.
    pub(crate) fn route(&self, slot: usize) -> (GroupId, Option<GroupId>) {
        let s = self.slots.read()[slot];
        (s.owner, s.migrating_to)
    }

    /// A consistent copy of the ownership map for client-side caching.
    pub fn snapshot(&self) -> RoutingSnapshot {
        let slots = self.slots.read();
        // Epoch read under the same lock every writer holds, so the
        // snapshot's epoch never lags its owners.
        RoutingSnapshot {
            epoch: self.epoch.load(Ordering::Acquire),
            owners: slots.iter().map(|s| s.owner).collect(),
        }
    }

    /// Marks `slot` as migrating toward `to`. Ownership (and therefore
    /// the epoch) is unchanged — clients keep routing to the source;
    /// the mark only turns the owner's writes into double-writes.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] if the slot is already migrating.
    pub(crate) fn set_migrating(&self, slot: usize, to: GroupId) -> Result<(), StoreError> {
        let mut slots = self.slots.write();
        if slots[slot].migrating_to.is_some() {
            return Err(StoreError::InvalidConfig(format!(
                "slot {slot} is already migrating"
            )));
        }
        slots[slot].migrating_to = Some(to);
        Ok(())
    }

    /// Clears a migration mark without flipping ownership (the abort
    /// path: the source keeps the slot).
    pub(crate) fn clear_migrating(&self, slot: usize) {
        self.slots.write()[slot].migrating_to = None;
    }

    /// The migration commit point: `slot`'s ownership flips to `to`, the
    /// migration mark clears, and the epoch bumps. Returns the new
    /// epoch. The caller must hold the slot's write gate so no operation
    /// straddles the flip.
    pub(crate) fn flip(&self, slot: usize, to: GroupId) -> u64 {
        let mut slots = self.slots.write();
        slots[slot].owner = to;
        slots[slot].migrating_to = None;
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// A client-side copy of the ownership map, tagged with the epoch it was
/// taken at. Stale snapshots are harmless: a misrouted operation comes
/// back as [`StoreError::WrongGroup`] and the client refreshes.
#[derive(Debug, Clone)]
pub struct RoutingSnapshot {
    epoch: u64,
    owners: Vec<GroupId>,
}

impl RoutingSnapshot {
    /// The epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The owner this snapshot routes `slot` to.
    pub fn owner(&self, slot: usize) -> GroupId {
        self.owners[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_bumps_epoch_and_moves_owner() {
        let t = RoutingTable::new(vec![0, 0, 1]);
        let e0 = t.epoch();
        t.set_migrating(1, 1).expect("fresh slot");
        assert_eq!(t.epoch(), e0, "marking must not bump the epoch");
        assert_eq!(t.route(1), (0, Some(1)));
        let e1 = t.flip(1, 1);
        assert_eq!(e1, e0 + 1);
        assert_eq!(t.route(1), (1, None));
    }

    #[test]
    fn double_mark_refused() {
        let t = RoutingTable::new(vec![0]);
        t.set_migrating(0, 1).expect("fresh slot");
        assert!(t.set_migrating(0, 1).is_err());
        t.clear_migrating(0);
        assert!(t.set_migrating(0, 1).is_ok());
    }
}
