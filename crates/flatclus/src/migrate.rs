//! Online shard migration: suffix rounds over the source's logs, a
//! flatrpc ring into the destination, and the gated flip.
//!
//! # Convergence
//!
//! The ring carries the slot's operations in rounds that partition the
//! source's per-core logs by position: bulk `(NULL, T0]` (deduplicated
//! to the newest version per key), delta `(T0, T1]`, final `(T1, T2]`
//! in log order. Per key, the versions the stream carries are therefore
//! non-decreasing, and the single applier applies them in stream order
//! — so the *last* ring apply of any key is its newest logged version.
//! Double-writes may interleave stale ring applies in between, but the
//! final round runs with the slot's write gate held **after** every
//! double-write drained (each double-writer completes its destination
//! apply before releasing the gate), so the final applies land last and
//! the destination converges to exactly the source's slot contents at
//! the flip. The flip happens only after the ring acks the final round,
//! which the applier sends only after the destination engine acked the
//! ops (durably, and replicated inside the destination group).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use flatrpc::{clock, ClientPort, Envelope, Fabric};
use flatstore::{ReplOp, StoreError, StoreHandle};
use pmem::PmAddr;
use workloads::slot_of_key;

use crate::cluster::ClusterShared;
use crate::ring::GroupId;
use crate::stats::ClusterStats;

/// Operations per shipped batch: mirrors `flatrepl`'s catch-up batching
/// (one destination-durable apply per batch, no chunk-overflow risk).
const MIG_BATCH: usize = 64;

/// Outstanding batches the ring may buffer before `ship` blocks —
/// bounds how far the source can run ahead of the destination applier.
const RING_CAPACITY: usize = 16;

/// One migration batch on the inter-group ring: a self-contained run of
/// shipping-ready operations (pointer payloads already resolved), in
/// the order the applier must apply them.
#[derive(Debug, Clone)]
pub struct MigBatch {
    /// The operations (puts and tombstones with source versions).
    pub ops: Vec<ReplOp>,
}

/// The destination's acknowledgment: batch `seq` is durably applied
/// (and replicated, when the destination group has a backup).
#[derive(Debug, Clone, Copy)]
pub struct MigAck {
    /// Whether every operation in the batch applied cleanly.
    pub ok: bool,
}

type MigFabric = Fabric<Envelope<MigBatch>, Envelope<MigAck>>;
type MigPort = ClientPort<Envelope<MigBatch>, Envelope<MigAck>>;

/// What one completed migration did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// The migrated slot.
    pub slot: usize,
    /// The source group.
    pub from: GroupId,
    /// The destination (and new owner).
    pub to: GroupId,
    /// Newest-version-per-key snapshot operations the bulk round shipped.
    pub bulk_ops: u64,
    /// Suffix operations the un-paused delta round shipped.
    pub delta_ops: u64,
    /// Suffix operations shipped inside the flip window.
    pub final_ops: u64,
    /// The client-visible flip pause, in nanoseconds.
    pub pause_ns: u64,
    /// The routing epoch after the flip (unchanged for a no-op
    /// migration to the current owner).
    pub epoch: u64,
}

/// The migrator's end of the inter-group ring, plus the destination
/// applier thread feeding the batches into the destination group's
/// ordinary write path.
struct MigRing {
    port: MigPort,
    stop: Arc<AtomicBool>,
    applier: Option<JoinHandle<()>>,
    sent: u64,
    acked: u64,
}

impl MigRing {
    fn start(dst: StoreHandle, stats: Arc<ClusterStats>) -> Result<MigRing, StoreError> {
        let fabric: MigFabric = Fabric::new(1, 1, RING_CAPACITY);
        let port = fabric.client_port(0);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_applier = Arc::clone(&stop);
        let mut cores = fabric.server_cores();
        let mut core = cores.remove(0);
        let applier = std::thread::Builder::new()
            .name("flatclus-mig-apply".into())
            .spawn(move || {
                let mut idle: u32 = 0;
                while !stop_applier.load(Ordering::Acquire) {
                    match core.poll() {
                        Some((client, env)) => {
                            idle = 0;
                            let mut ok = true;
                            for op in &env.body.ops {
                                let applied = match op {
                                    ReplOp::Put { key, value, .. } => dst.put(*key, value),
                                    ReplOp::Delete { key, .. } => dst.delete(*key).map(|_| ()),
                                };
                                if applied.is_err() {
                                    ok = false;
                                    break;
                                }
                            }
                            stats.mig_batches.inc();
                            stats.mig_ops.add(env.body.ops.len() as u64);
                            core.respond(client, Envelope::new(env.seq, MigAck { ok }));
                        }
                        None => {
                            idle = idle.saturating_add(1);
                            if idle < 64 {
                                std::hint::spin_loop();
                            } else if idle < 256 {
                                std::thread::yield_now();
                            } else {
                                std::thread::sleep(std::time::Duration::from_micros(50));
                            }
                        }
                    }
                }
            })
            .map_err(|e| {
                StoreError::InvalidConfig(format!("cannot spawn migration applier: {e}"))
            })?;
        Ok(MigRing {
            port,
            stop,
            applier: Some(applier),
            sent: 0,
            acked: 0,
        })
    }

    fn take_ack(&mut self, env: Envelope<MigAck>) -> Result<(), StoreError> {
        self.acked += 1;
        if env.body.ok {
            Ok(())
        } else {
            Err(StoreError::corrupt(
                "migration batch failed to apply at the destination",
            ))
        }
    }

    /// Ships `ops` in [`MIG_BATCH`] chunks, absorbing acks whenever the
    /// ring is full (back-pressure from the destination applier).
    fn ship(&mut self, ops: &[ReplOp]) -> Result<(), StoreError> {
        for chunk in ops.chunks(MIG_BATCH) {
            let mut env = Envelope::new(
                self.sent + 1,
                MigBatch {
                    ops: chunk.to_vec(),
                },
            );
            loop {
                match self.port.send(0, env) {
                    Ok(()) => break,
                    Err(back) => {
                        env = back;
                        let ack = self.port.recv();
                        self.take_ack(ack)?;
                    }
                }
            }
            self.sent += 1;
        }
        Ok(())
    }

    /// Blocks until every shipped batch is destination-acked.
    fn drain(&mut self) -> Result<(), StoreError> {
        while self.acked < self.sent {
            let ack = self.port.recv();
            self.take_ack(ack)?;
        }
        Ok(())
    }
}

impl Drop for MigRing {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.applier.take() {
            let _ = t.join();
        }
    }
}

impl ClusterShared {
    /// [`Cluster::migrate`](crate::Cluster::migrate)'s implementation.
    pub(crate) fn migrate_slot(
        &self,
        slot: usize,
        to: GroupId,
    ) -> Result<MigrationReport, StoreError> {
        let _serial = self.migration.lock();
        if slot >= self.nslots() {
            return Err(StoreError::InvalidConfig(format!("no slot {slot}")));
        }
        if usize::from(to) >= self.incarnation.len() {
            return Err(StoreError::InvalidConfig(format!("no group {to}")));
        }
        let from = self.table.owner(slot);
        if from == to {
            return Ok(MigrationReport {
                slot,
                from,
                to,
                bulk_ops: 0,
                delta_ops: 0,
                final_ops: 0,
                pause_ns: 0,
                epoch: self.table.epoch(),
            });
        }
        self.stats.migrations_started.inc();
        let started_ns = clock::now_ns();
        // Mark under the gate: no write can straddle the transition into
        // double-writing (anything already past its check completes
        // before we hold the write side; anything after re-reads the
        // mark).
        {
            let _g = self.gates[slot].write();
            self.table.set_migrating(slot, to)?;
        }
        match self.run_rounds(slot, from, to) {
            Ok(report) => {
                self.stats.migrations_completed.inc();
                self.stats
                    .migration_ns
                    .record(clock::now_ns().saturating_sub(started_ns));
                Ok(report)
            }
            Err(e) => {
                // Abort: the source (possibly freshly promoted) keeps the
                // slot; double-writing stops. Ownership never changed, so
                // the epoch stays — stale clients were never created.
                let _g = self.gates[slot].write();
                self.table.clear_migrating(slot);
                self.stats.migrations_aborted.inc();
                Err(e)
            }
        }
    }

    /// Barriers the source and collects the slot's suffix past
    /// `cursors` (`None` = whole chain, deduplicated newest-per-key).
    /// Returns the new per-core cursors and the operations to ship.
    fn collect_round(
        &self,
        slot: usize,
        from: GroupId,
        incarnation: u64,
        cursors: Option<&[PmAddr]>,
    ) -> Result<(Vec<PmAddr>, Vec<ReplOp>), StoreError> {
        let groups = self.groups.read();
        // Same-lock check: a failover bumps the incarnation under the
        // write lock, so under the read lock the engine we see matches
        // the incarnation we check — cursors never cross engines.
        if self.incarnation[usize::from(from)].load(Ordering::Acquire) != incarnation {
            return Err(StoreError::ShuttingDown);
        }
        let engine = groups
            .get(usize::from(from))
            .and_then(|g| g.as_ref())
            .ok_or(StoreError::ShuttingDown)?;
        engine.barrier();
        let ncores = self.cfg.engine.ncores;
        let nslots = self.nslots();
        let mut tails = Vec::with_capacity(ncores);
        let mut ops = Vec::new();
        for core in 0..ncores {
            let from_addr = cursors.map_or(PmAddr::NULL, |c| c[core]);
            let tail = engine.repl_suffix(core, from_addr, |op| {
                let key = match &op {
                    ReplOp::Put { key, .. } | ReplOp::Delete { key, .. } => *key,
                };
                if slot_of_key(key, nslots) == slot {
                    ops.push(op);
                }
            })?;
            tails.push(tail);
        }
        if cursors.is_none() {
            ops = dedupe_newest(ops);
        }
        Ok((tails, ops))
    }

    fn run_rounds(
        &self,
        slot: usize,
        from: GroupId,
        to: GroupId,
    ) -> Result<MigrationReport, StoreError> {
        let incarnation = self.incarnation[usize::from(from)].load(Ordering::Acquire);
        let mut ring = MigRing::start(self.group_handle(to)?, Arc::clone(&self.stats))?;

        // Bulk: the slot's snapshot as of the mark, newest version per
        // key. Shipped outside any lock — writes keep flowing (they
        // double-write, so nothing the bulk misses is lost).
        let (cursors, bulk) = self.collect_round(slot, from, incarnation, None)?;
        let bulk_ops = bulk.len() as u64;
        ring.ship(&bulk)?;

        // Delta: whatever landed in the log while the bulk shipped, in
        // log order — repairs any bulk apply that raced a newer
        // double-write, and shrinks the final (paused) sliver.
        let (cursors, delta) = self.collect_round(slot, from, incarnation, Some(&cursors))?;
        let delta_ops = delta.len() as u64;
        ring.ship(&delta)?;

        // Flip window: exclusive gate drains in-flight double-writes and
        // pauses new slot operations (only this slot's); the last sliver
        // ships, the ring drains, ownership flips.
        let pause_start = clock::now_ns();
        let gate = self.gates[slot].write();
        let (_, final_round) = self.collect_round(slot, from, incarnation, Some(&cursors))?;
        let final_ops = final_round.len() as u64;
        ring.ship(&final_round)?;
        ring.drain()?;
        if self.incarnation[usize::from(from)].load(Ordering::Acquire) != incarnation {
            return Err(StoreError::ShuttingDown);
        }
        let epoch = self.table.flip(slot, to);
        drop(gate);
        let pause_ns = clock::now_ns().saturating_sub(pause_start);
        self.stats.pause_ns.record(pause_ns);

        Ok(MigrationReport {
            slot,
            from,
            to,
            bulk_ops,
            delta_ops,
            final_ops,
            pause_ns,
            epoch,
        })
    }
}

/// Collapses a full-chain walk to the newest version per key. Entries
/// for one key all live in one core's log (keys shard by hash), so the
/// version field totally orders them.
fn dedupe_newest(ops: Vec<ReplOp>) -> Vec<ReplOp> {
    let mut newest: std::collections::HashMap<u64, ReplOp> = std::collections::HashMap::new();
    for op in ops {
        let (key, version) = match &op {
            ReplOp::Put { key, version, .. } | ReplOp::Delete { key, version } => (*key, *version),
        };
        match newest.get(&key) {
            Some(ReplOp::Put { version: v, .. }) | Some(ReplOp::Delete { version: v, .. })
                if *v >= version => {}
            _ => {
                newest.insert(key, op);
            }
        }
    }
    newest.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedupe_keeps_newest_version() {
        let ops = vec![
            ReplOp::Put {
                key: 1,
                version: 1,
                value: b"old".to_vec(),
            },
            ReplOp::Put {
                key: 1,
                version: 3,
                value: b"new".to_vec(),
            },
            ReplOp::Delete { key: 2, version: 2 },
            ReplOp::Put {
                key: 2,
                version: 1,
                value: b"stale".to_vec(),
            },
        ];
        let mut out = dedupe_newest(ops);
        out.sort_by_key(|op| match op {
            ReplOp::Put { key, .. } | ReplOp::Delete { key, .. } => *key,
        });
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], ReplOp::Put { version: 3, value, .. } if value == b"new"));
        assert!(matches!(&out[1], ReplOp::Delete { key: 2, version: 2 }));
    }
}
