//! **flatclus** — a consistent-hash cluster of FlatStore replica groups
//! with live shard migration.
//!
//! One [`flatrepl::ReplicatedStore`] is the paper's single node scaled to
//! its core count; the ROADMAP's "millions of users" story needs N such
//! primary-backup groups behind a key router. This crate is that layer,
//! Cyclone-style: the replicated groups stay exactly as PR 4 built them,
//! and the cluster adds
//!
//! * **slot routing** — every key hashes onto one of
//!   [`NSLOTS`] virtual slots
//!   ([`workloads::slot_of_key`]); a pluggable [`SlotRing`] (default
//!   [`RendezvousRing`], highest-random-weight) assigns slots to groups
//!   so a group join/leave moves only the minimal slot set;
//! * **a versioned routing table** — [`RoutingTable`] maps slot →
//!   owning group and bumps a monotonic **epoch** on every ownership
//!   flip. Group fronts refuse operations for slots they no longer own
//!   with [`WrongGroup`](flatstore::StoreError::WrongGroup)`{epoch}`;
//!   a [`ClusterClient`] caches
//!   a routing snapshot and refreshes + retries on redirect, so stale
//!   clients converge without any broadcast;
//! * **online shard migration** — [`Cluster::migrate`] ships a slot's
//!   data to a new owner while writes keep flowing:
//!
//!   1. the slot is marked *migrating*; from that point every write to
//!      the slot **double-writes** (source first — so acks keep their
//!      replication guarantee — then destination) under the slot's gate;
//!   2. a **bulk round** barriers the source and walks its per-core logs
//!      via the existing `repl_suffix` chain walk (the same primitive
//!      `flatrepl::catch_up` re-ships to a stale backup), deduplicates
//!      to the newest version per key, and ships the snapshot through a
//!      dedicated flatrpc ring to an applier feeding the destination
//!      group's ordinary write path (so migrated data is itself
//!      replicated inside the destination group);
//!   3. a **delta round** re-walks only the log suffix past the bulk
//!      cursors, repairing any bulk apply that raced a newer
//!      double-write (per key, ring batches always carry versions in
//!      log order, so the last apply wins correctly);
//!   4. the **flip**: the slot's write gate is taken exclusively (this
//!      is the only client-visible pause, and it covers one slot, not
//!      the store), the final sliver of suffix is shipped and the ring
//!      drained, then ownership flips and the epoch bumps. In-flight
//!      clients get `WrongGroup` and re-route.
//!
//! The commit point is the flip: before it the source owns the slot and
//! every acked write is durable there (double-writes hit the source
//! first), so a source failure mid-migration simply aborts the transfer
//! — promote the backup ([`Cluster::fail_group_primary`]) and every
//! acked op is still served. After the flip the destination owns the
//! slot and has provably converged (the ring stream ends with the
//! newest version of every key, applied after all double-writes
//! drained).
//!
//! # Quickstart
//!
//! ```
//! use flatclus::{Cluster, ClusterConfig};
//! use flatstore::prelude::*;
//!
//! let cfg = ClusterConfig {
//!     groups: 2,
//!     nslots: 64,
//!     replicated: false, // true pairs every group with a backup
//!     engine: Config::builder()
//!         .pm_bytes(48 << 20)
//!         .ncores(2)
//!         .group_size(2)
//!         .build()?,
//! };
//! let cluster = Cluster::create(cfg)?;
//! let mut client = cluster.client()?;
//! client.put(7, b"sharded")?;
//! assert_eq!(client.get(7)?.as_deref(), Some(&b"sharded"[..]));
//!
//! // Move key 7's slot to the other group, live.
//! let slot = cluster.slot_of(7);
//! let to = (cluster.owner_of(slot) + 1) % 2;
//! cluster.migrate(slot, to)?;
//! assert_eq!(client.get(7)?.as_deref(), Some(&b"sharded"[..])); // redirected
//! cluster.shutdown()?;
//! # Ok::<(), flatstore::StoreError>(())
//! ```

mod client;
mod cluster;
mod migrate;
mod ring;
mod stats;
mod table;

pub use client::ClusterClient;
pub use cluster::{Cluster, ClusterConfig};
pub use migrate::{MigAck, MigBatch, MigrationReport};
pub use ring::{GroupId, RendezvousRing, SlotRing};
pub use stats::ClusterStats;
pub use table::{RoutingSnapshot, RoutingTable};
pub use workloads::{slot_of_key, NSLOTS};
