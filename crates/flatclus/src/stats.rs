//! Cluster observability: migration, redirect and pause accounting.

use obs::{Counter, LogHistogram, StatsReport};

/// Cluster-level counters and distributions, reported through [`obs`].
///
/// `pause_ns` is the acceptance metric for live migration: the
/// client-visible stall is the flip window (final suffix sliver + ring
/// drain + table flip, all under one slot's write gate), which must stay
/// far below `migration_ns` (the whole suffix-ship window) — migration
/// pauses one slot briefly, it never stops the world.
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// Operations refused with [`WrongGroup`]: a stale client routed a
    /// slot to a group that no longer owns it.
    ///
    /// [`WrongGroup`]: flatstore::StoreError::WrongGroup
    pub redirects: Counter,
    /// Routing-snapshot refreshes clients performed (each redirect or
    /// failover retry triggers one).
    pub client_refreshes: Counter,
    /// Writes applied twice (source + destination) inside a migration
    /// window.
    pub double_writes: Counter,
    /// Migrations entered.
    pub migrations_started: Counter,
    /// Migrations that flipped ownership.
    pub migrations_completed: Counter,
    /// Migrations aborted (source failure, cursor invalidation, …); the
    /// source kept the slot.
    pub migrations_aborted: Counter,
    /// Batches shipped over migration rings.
    pub mig_batches: Counter,
    /// Operations those batches carried (bulk + delta + final rounds).
    pub mig_ops: Counter,
    /// Client-visible flip pause per migration, in nanoseconds.
    pub pause_ns: LogHistogram,
    /// Whole-migration duration (mark → flip), in nanoseconds: the
    /// suffix-ship window `pause_ns` must undercut.
    pub migration_ns: LogHistogram,
}

impl ClusterStats {
    /// Adds a `cluster` section to `r`.
    pub fn fill_report(&self, r: &mut StatsReport) {
        let sec = r.section("cluster");
        sec.row("redirects", self.redirects.get())
            .row("client_refreshes", self.client_refreshes.get())
            .row("double_writes", self.double_writes.get())
            .row("migrations_started", self.migrations_started.get())
            .row("migrations_completed", self.migrations_completed.get())
            .row("migrations_aborted", self.migrations_aborted.get())
            .row("mig_batches", self.mig_batches.get())
            .row("mig_ops", self.mig_ops.get());
        if !self.pause_ns.is_empty() {
            sec.latency_rows("pause", &self.pause_ns.snapshot());
        }
        if !self.migration_ns.is_empty() {
            sec.latency_rows("migration", &self.migration_ns.snapshot());
        }
    }
}
