//! Hash-ring placement properties: rendezvous assignment must spread
//! slots evenly across groups, and membership changes must move only
//! the minimal slot set (join moves only slots the newcomer wins;
//! leave moves only the leaver's slots).

use flatclus::{GroupId, RendezvousRing, SlotRing};
use proptest::prelude::*;

const NSLOTS: usize = 1024;

fn ids(n: usize) -> Vec<GroupId> {
    (0..n as u16).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every group's slot share stays within ±20% of the fair share.
    #[test]
    fn assignment_balanced_within_20_percent(ngroups in 2usize..=12) {
        let owners = RendezvousRing.assign(NSLOTS, &ids(ngroups));
        prop_assert_eq!(owners.len(), NSLOTS);
        let mut counts = vec![0usize; ngroups];
        for &g in &owners {
            counts[usize::from(g)] += 1;
        }
        let fair = NSLOTS as f64 / ngroups as f64;
        for (gid, &n) in counts.iter().enumerate() {
            let dev = (n as f64 - fair).abs() / fair;
            prop_assert!(
                dev <= 0.20,
                "group {} owns {} slots, fair share {:.1} (deviation {:.1}%)",
                gid, n, fair, dev * 100.0
            );
        }
    }

    /// Adding a group moves slots only *to* the newcomer: every slot the
    /// join reassigns was won by the new group, and every other slot
    /// keeps its old owner. (This is rendezvous hashing's defining
    /// minimal-movement property — each slot's winner among the old
    /// groups is unchanged by a new contestant unless the contestant
    /// itself wins.)
    #[test]
    fn join_moves_slots_only_to_newcomer(ngroups in 1usize..=11) {
        let before = RendezvousRing.assign(NSLOTS, &ids(ngroups));
        let after = RendezvousRing.assign(NSLOTS, &ids(ngroups + 1));
        let newcomer = ngroups as GroupId;
        let mut moved = 0usize;
        for slot in 0..NSLOTS {
            if after[slot] != before[slot] {
                prop_assert_eq!(
                    after[slot], newcomer,
                    "slot {} moved {} -> {}, not to the joining group {}",
                    slot, before[slot], after[slot], newcomer
                );
                moved += 1;
            }
        }
        // The newcomer must take roughly its fair share, no more: the
        // movement is minimal (≈ NSLOTS / (n+1)), not a reshuffle.
        let fair = NSLOTS as f64 / (ngroups + 1) as f64;
        prop_assert!(
            (moved as f64) <= fair * 1.20,
            "join moved {} slots, expected ≈{:.1}",
            moved, fair
        );
        prop_assert!(moved > 0, "a join that moves nothing starves the new group");
    }

    /// Removing a group moves only the slots it owned; survivors keep
    /// every slot they already had.
    #[test]
    fn leave_moves_only_leavers_slots(ngroups in 2usize..=12, leaver_pick in 0usize..12) {
        let leaver = (leaver_pick % ngroups) as GroupId;
        let before = RendezvousRing.assign(NSLOTS, &ids(ngroups));
        let survivors: Vec<GroupId> =
            ids(ngroups).into_iter().filter(|&g| g != leaver).collect();
        let after = RendezvousRing.assign(NSLOTS, &survivors);
        for slot in 0..NSLOTS {
            prop_assert!(after[slot] != leaver, "slot {} still routed to the leaver", slot);
            if before[slot] != leaver {
                prop_assert_eq!(
                    after[slot], before[slot],
                    "slot {} moved {} -> {} though its owner never left",
                    slot, before[slot], after[slot]
                );
            }
        }
    }

    /// Placement is a pure function of (nslots, membership) — every
    /// node computing the table independently agrees.
    #[test]
    fn assignment_deterministic(ngroups in 1usize..=12) {
        let a = RendezvousRing.assign(NSLOTS, &ids(ngroups));
        let b = RendezvousRing.assign(NSLOTS, &ids(ngroups));
        prop_assert_eq!(a, b);
    }
}
