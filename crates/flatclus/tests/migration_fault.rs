//! Migration under failure: the source group's primary dies mid-flight.
//! The migration must either have committed (the flip happened first)
//! or abort cleanly — and in both cases every acknowledged operation
//! must survive on whichever group owns the slot after promotion, with
//! clients re-routing transparently.

use std::collections::HashMap;
use std::sync::Arc;

use flatclus::{Cluster, ClusterConfig};
use flatstore::{Config, KvApi, StoreError};

fn cluster_cfg() -> ClusterConfig {
    ClusterConfig {
        groups: 2,
        nslots: 8,
        replicated: true,
        engine: Config::builder()
            .pm_bytes(48 << 20)
            .dram_bytes(8 << 20)
            .ncores(2)
            .group_size(2)
            .build()
            .expect("valid test config"),
    }
}

fn val(key: u64, round: u64) -> Vec<u8> {
    let mut v = key.to_le_bytes().to_vec();
    v.extend_from_slice(&round.to_le_bytes());
    v.extend(std::iter::repeat_n((key % 251) as u8, 64));
    v
}

/// One run of migrate-vs-kill with the kill delayed by `kill_after`.
/// Returns whether the migration completed (vs aborted).
fn run_once(kill_after: std::time::Duration) -> bool {
    let cluster = Arc::new(Cluster::create(cluster_cfg()).expect("create"));
    let mut client = cluster.client().expect("client");

    // Acked state: a pile of puts (plus a few deletes) — synchronous
    // client calls, so every op here was acknowledged through the
    // replicated pair before the fault.
    let mut model: HashMap<u64, Option<Vec<u8>>> = HashMap::new();
    for key in 0..600u64 {
        let v = val(key, 0);
        client.put(key, &v).expect("put acked");
        model.insert(key, Some(v));
    }
    for key in (0..600u64).step_by(7) {
        client.delete(key).expect("delete acked");
        model.insert(key, None);
    }

    // Pick a slot owned by group 0 (the group we will kill) and migrate
    // it to group 1 while group 0's primary dies.
    let slot = (0..cluster.nslots())
        .find(|&s| cluster.owner_of(s) == 0)
        .expect("group 0 owns some slot");

    let migrator = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || cluster.migrate(slot, 1))
    };
    std::thread::sleep(kill_after);
    cluster.fail_group_primary(0).expect("promote backup");

    let outcome = migrator.join().expect("migrator thread");
    let completed = match outcome {
        Ok(report) => {
            assert_eq!(report.to, 1);
            assert_eq!(cluster.owner_of(slot), 1, "committed flip must stick");
            true
        }
        Err(StoreError::ShuttingDown) => {
            assert_eq!(
                cluster.owner_of(slot),
                0,
                "aborted migration must leave the source owning the slot"
            );
            assert!(cluster.stats().migrations_aborted.get() >= 1);
            false
        }
        Err(e) => panic!("unexpected migration outcome: {e}"),
    };

    // Re-route and audit: whichever group serves each slot now (the
    // promoted source or the destination), every acked op must read
    // back exactly.
    client.refresh().expect("refresh after promotion");
    cluster.barrier();
    for (key, expect) in &model {
        assert_eq!(
            &client.get(*key).expect("audit get"),
            expect,
            "acked op on key {key} lost after primary failure \
             (migration completed: {completed})"
        );
    }

    // The failed-over group is a bare Single now; a fresh migration off
    // the promoted engine must work (cursors were invalidated, not
    // reused).
    let retry_slot = (0..cluster.nslots())
        .find(|&s| cluster.owner_of(s) == 0)
        .expect("group 0 still owns some slot");
    cluster
        .migrate(retry_slot, 1)
        .expect("migrate off promoted engine");
    for (key, expect) in &model {
        assert_eq!(&client.get(*key).expect("post-retry get"), expect);
    }

    let cluster = Arc::try_unwrap(cluster)
        .map_err(|_| ())
        .expect("sole owner");
    cluster.shutdown().expect("shutdown");
    completed
}

/// Sweep the kill across the migration timeline: an immediate kill
/// lands before/inside the bulk round, later kills inside delta/final
/// rounds or after the flip. Both outcomes (abort, complete) are legal;
/// acked durability is checked in every run.
#[test]
fn source_primary_dies_mid_migration() {
    let mut aborted = 0u32;
    let mut completed = 0u32;
    for millis in [0u64, 1, 3, 8, 25] {
        if run_once(std::time::Duration::from_millis(millis)) {
            completed += 1;
        } else {
            aborted += 1;
        }
    }
    // The sweep must exercise the fault path at least once: an
    // immediate kill beats a multi-round suffix ship of 600 keys.
    assert!(
        aborted >= 1,
        "no run aborted ({completed} completed) — the kill never landed mid-flight"
    );
}

/// Killing a primary with no migration in flight: plain promotion, all
/// acked ops survive, clients re-route via ShuttingDown retries.
#[test]
fn promotion_without_migration_keeps_acked_ops() {
    let cluster = Cluster::create(cluster_cfg()).expect("create");
    let mut client = cluster.client().expect("client");
    for key in 0..200u64 {
        client.put(key, &val(key, 7)).expect("put");
    }
    cluster.fail_group_primary(0).expect("promote");
    // No refresh here: the stale handle returns ShuttingDown and the
    // client's retry loop refreshes on its own.
    for key in 0..200u64 {
        assert_eq!(client.get(key).expect("get"), Some(val(key, 7)));
    }
    // A group without a backup cannot fail over again.
    assert!(matches!(
        cluster.fail_group_primary(0),
        Err(StoreError::InvalidConfig(_))
    ));
    cluster.shutdown().expect("shutdown");
}
