//! Cluster end-to-end: routing, stale-client redirects, cross-group
//! range scans, and the acceptance run — a zipf-skewed mixed workload
//! over four replicated groups, continuously serving while a hot slot
//! migrates between groups, with zero lost or duplicated acked ops and
//! no read stale past the flip epoch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use flatclus::{Cluster, ClusterConfig};
use flatstore::{Config, IndexKind, KvApi, Op, Reply, StoreError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn engine_cfg() -> Config {
    Config::builder()
        .pm_bytes(48 << 20)
        .dram_bytes(8 << 20)
        .ncores(2)
        .group_size(2)
        .build()
        .expect("valid test config")
}

fn cluster_cfg(groups: usize, nslots: usize, replicated: bool) -> ClusterConfig {
    ClusterConfig {
        groups,
        nslots,
        replicated,
        engine: engine_cfg(),
    }
}

fn val(key: u64, round: u64) -> Vec<u8> {
    let mut v = key.to_le_bytes().to_vec();
    v.extend_from_slice(&round.to_le_bytes());
    v.extend(std::iter::repeat_n((key % 251) as u8, (key % 48) as usize));
    v
}

/// Keys land on the group the table routes them to, and reads come back
/// through the routed client exactly as written — across every group.
#[test]
fn routing_basics_across_groups() {
    let cluster = Cluster::create(cluster_cfg(3, 16, false)).expect("create");
    let mut client = cluster.client().expect("client");
    for key in 0..300u64 {
        client.put(key, &val(key, 0)).expect("put");
    }
    // Every group owns some slot at 16 slots / 3 groups (rendezvous
    // balance), so the keyspace genuinely spans the cluster.
    let mut groups_hit = std::collections::HashSet::new();
    for slot in 0..cluster.nslots() {
        groups_hit.insert(cluster.owner_of(slot));
    }
    assert_eq!(groups_hit.len(), 3, "some group owns no slots");
    for key in 0..300u64 {
        assert_eq!(client.get(key).expect("get"), Some(val(key, 0)));
    }
    assert!(!client.delete(9999).expect("delete missing"));
    assert!(client.delete(7).expect("delete present"));
    assert_eq!(client.get(7).expect("get deleted"), None);
    cluster.shutdown().expect("shutdown");
}

/// The `Op`-level entry point routes every verb and wraps the outcome
/// in the right `Reply` variant.
#[test]
fn op_call_routes_every_verb() {
    let cluster = Cluster::create(cluster_cfg(2, 8, false)).expect("create");
    let mut client = cluster.client().expect("client");
    match client
        .call(Op::Put {
            key: 1,
            value: b"one".to_vec(),
        })
        .expect("put")
    {
        Reply::Put(r) => r.expect("put ok"),
        other => panic!("wrong reply: {other:?}"),
    }
    match client.call(Op::Get { key: 1 }).expect("get") {
        Reply::Get(r) => assert_eq!(r.expect("get ok"), Some(b"one".to_vec())),
        other => panic!("wrong reply: {other:?}"),
    }
    match client.call(Op::Delete { key: 1 }).expect("del") {
        Reply::Delete(r) => assert!(r.expect("del ok")),
        other => panic!("wrong reply: {other:?}"),
    }
    cluster.shutdown().expect("shutdown");
}

/// A client whose snapshot predates a migration is refused with
/// `WrongGroup`, refreshes, and succeeds — the epoch/redirect protocol
/// end to end. A second (fresh) client watches the same keys directly.
#[test]
fn stale_client_redirects_after_migration() {
    let cluster = Cluster::create(cluster_cfg(2, 8, false)).expect("create");
    let mut stale = cluster.client().expect("client");
    let epoch_before = stale.epoch();

    // Find a slot with traffic and move it to the other group.
    let probe_key = 42u64;
    let slot = cluster.slot_of(probe_key);
    let from = cluster.owner_of(slot);
    let to = (from + 1) % 2;
    stale.put(probe_key, b"before").expect("put");

    let report = cluster.migrate(slot, to).expect("migrate");
    assert_eq!(report.from, from);
    assert_eq!(report.to, to);
    assert!(report.epoch > epoch_before, "flip must bump the epoch");
    assert_eq!(cluster.owner_of(slot), to);

    // The stale client still routes to `from`; its next op must redirect
    // transparently and land on the new owner.
    let redirects_before = cluster.stats().redirects.get();
    assert_eq!(stale.get(probe_key).expect("get"), Some(b"before".to_vec()));
    assert!(
        cluster.stats().redirects.get() > redirects_before,
        "stale route should have been refused at least once"
    );
    assert_eq!(
        stale.epoch(),
        cluster.epoch(),
        "client refreshed to the flip epoch"
    );

    stale.put(probe_key, b"after").expect("put after flip");
    assert_eq!(stale.get(probe_key).expect("get"), Some(b"after".to_vec()));
    cluster.shutdown().expect("shutdown");
}

/// Migrating a slot back and forth repeatedly keeps its contents exact
/// (bulk + delta + final rounds compose; dedup keeps newest versions).
#[test]
fn migrate_round_trips_preserve_contents() {
    let cluster = Cluster::create(cluster_cfg(2, 8, false)).expect("create");
    let mut client = cluster.client().expect("client");
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut rng = SmallRng::seed_from_u64(0x5107_0a11);
    for round in 0..4u64 {
        for i in 0..200u64 {
            let key = rng.gen_range(0..64u64);
            if rng.gen_bool(0.2) {
                client.delete(key).expect("delete");
                model.remove(&key);
            } else {
                let v = val(key, round * 1000 + i);
                client.put(key, &v).expect("put");
                model.insert(key, v);
            }
        }
        let slot = cluster.slot_of(17);
        let to = (cluster.owner_of(slot) + 1) % 2;
        cluster.migrate(slot, to).expect("migrate");
    }
    for key in 0..64u64 {
        assert_eq!(
            client.get(key).expect("get"),
            model.get(&key).cloned(),
            "key {key} diverged from the model"
        );
    }
    cluster.shutdown().expect("shutdown");
}

/// Range fans out across groups and merges by key — including right
/// after a migration left un-purged copies at a slot's old home.
#[test]
fn range_fans_out_and_dedupes_after_migration() {
    let mut cfg = cluster_cfg(3, 16, false);
    cfg.engine = Config::builder()
        .pm_bytes(48 << 20)
        .dram_bytes(8 << 20)
        .ncores(2)
        .group_size(2)
        .index(IndexKind::Masstree)
        .build()
        .expect("valid test config");
    let cluster = Cluster::create(cfg).expect("create");
    let mut client = cluster.client().expect("client");
    for key in 0..200u64 {
        client.put(key, &val(key, 0)).expect("put");
    }
    // Move a couple of slots around: their keys now exist on two groups,
    // but ownership filtering must keep each key exactly once.
    for &probe in &[3u64, 11, 57] {
        let slot = cluster.slot_of(probe);
        let to = (cluster.owner_of(slot) + 1) % 3;
        cluster.migrate(slot, to).expect("migrate");
    }
    let got = client.range(20, 120, 1000).expect("range");
    let expect: Vec<(u64, Vec<u8>)> = (20..120).map(|k| (k, val(k, 0))).collect();
    assert_eq!(got, expect);
    // Limit applies after the merge.
    let capped = client.range(0, 200, 10).expect("range capped");
    assert_eq!(capped.len(), 10);
    assert_eq!(capped[0].0, 0);
    assert_eq!(capped[9].0, 9);
    cluster.shutdown().expect("shutdown");
}

/// The acceptance run: 4 replicated groups, zipf-skewed mixed workload
/// running continuously while the hottest slot migrates between groups
/// several times. Every acked write must be readable (no lost ops), no
/// read may return a value older than the last ack the same thread
/// observed (no staleness past the flip), and the run must actually
/// exercise redirects and migrations.
#[test]
fn e2e_zipf_workload_survives_live_migrations() {
    const NSLOTS: usize = 16;
    const THREADS: usize = 3;
    const MIN_OPS_PER_THREAD: u64 = 400;
    const MIGRATIONS: u32 = 4;

    let cluster = Arc::new(Cluster::create(cluster_cfg(4, NSLOTS, true)).expect("create"));

    // Zipf-ish skew: half of every thread's traffic hammers a handful of
    // contiguous hot keys around `hot_base` (so the slot holding
    // `hot_base` is genuinely hot), the rest spreads over a 512-key
    // tail. Hot and cold key ranges are disjoint per thread, so each
    // thread's model map is an exact oracle for every key it touches.
    let hot_base = 1_000_000u64;
    let hot_slot = cluster.slot_of(hot_base);
    let stop = Arc::new(AtomicBool::new(false));

    let mut workers = Vec::new();
    for t in 0..THREADS {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut client = cluster.client().expect("client");
            let mut rng = SmallRng::seed_from_u64(0xe2e0 + t as u64);
            let mut model: HashMap<u64, Option<Vec<u8>>> = HashMap::new();
            let base = 10_000u64 * (t as u64 + 1);
            let mut i = 0u64;
            // Run at least MIN_OPS_PER_THREAD ops, then keep serving
            // until the migration driver is done — the workload never
            // pauses while slots move.
            while i < MIN_OPS_PER_THREAD || !stop.load(Ordering::Acquire) {
                let key = if rng.gen_bool(0.5) {
                    hot_base + (t as u64) * 4 + rng.gen_range(0..4u64)
                } else {
                    base + rng.gen_range(0..512u64)
                };
                match rng.gen_range(0..10u32) {
                    0 => {
                        client.delete(key).expect("delete acked");
                        model.insert(key, None);
                    }
                    1..=5 => {
                        let v = val(key, i);
                        client.put(key, &v).expect("put acked");
                        model.insert(key, Some(v));
                    }
                    _ => {
                        let got = client.get(key).expect("get");
                        if let Some(expect) = model.get(&key) {
                            assert_eq!(
                                &got, expect,
                                "thread {t} read a value inconsistent with its last ack \
                                 for key {key} (lost, duplicated or stale op)"
                            );
                        }
                    }
                }
                i += 1;
            }
            (model, client)
        }));
    }

    // Migrate the hot slot round-robin across all 4 groups while the
    // workload runs, then release the workers.
    let mut migrations = 0u32;
    let mut target = (cluster.owner_of(hot_slot) + 1) % 4;
    while migrations < MIGRATIONS {
        match cluster.migrate(hot_slot, target) {
            Ok(_) => migrations += 1,
            Err(e) => panic!("migration failed mid-run: {e}"),
        }
        target = (target + 1) % 4;
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, Ordering::Release);

    // Final audit: after everything quiesces, each thread's model must
    // match the cluster exactly — wherever the slots ended up.
    let mut audits = Vec::new();
    for w in workers {
        audits.push(w.join().expect("worker"));
    }
    cluster.barrier();
    for (t, (model, mut client)) in audits.into_iter().enumerate() {
        client.refresh().expect("refresh");
        for (key, expect) in &model {
            assert_eq!(
                &client.get(*key).expect("audit get"),
                expect,
                "thread {t}: acked state for key {key} lost after migrations"
            );
        }
    }

    assert!(
        migrations >= 2,
        "run too short to exercise migration ({migrations})"
    );
    let stats = cluster.stats();
    assert!(
        stats.migrations_completed.get() >= u64::from(migrations),
        "completed counter lags"
    );
    assert!(stats.redirects.get() > 0, "no stale route was ever refused");
    assert!(
        stats.mig_ops.get() > 0,
        "migrations shipped nothing — the hot slot never moved data"
    );

    let cluster = Arc::try_unwrap(cluster)
        .map_err(|_| ())
        .expect("sole owner");
    cluster.shutdown().expect("shutdown");
}

/// Epoch bookkeeping: every completed migration with an ownership change
/// bumps the epoch exactly once; no-op migrations don't.
#[test]
fn epoch_bumps_once_per_flip() {
    let cluster = Cluster::create(cluster_cfg(2, 8, false)).expect("create");
    let e0 = cluster.epoch();
    let slot = 3;
    let owner = cluster.owner_of(slot);
    let noop = cluster.migrate(slot, owner).expect("noop migrate");
    assert_eq!(noop.epoch, e0, "migrating to the current owner is a no-op");
    assert_eq!(cluster.epoch(), e0);
    cluster.migrate(slot, (owner + 1) % 2).expect("migrate");
    assert_eq!(cluster.epoch(), e0 + 1);
    cluster.migrate(slot, owner).expect("migrate back");
    assert_eq!(cluster.epoch(), e0 + 2);
    cluster.shutdown().expect("shutdown");
}

/// Unknown slots and groups are refused up front, without touching the
/// routing table.
#[test]
fn migrate_validates_arguments() {
    let cluster = Cluster::create(cluster_cfg(2, 8, false)).expect("create");
    assert!(matches!(
        cluster.migrate(8, 0),
        Err(StoreError::InvalidConfig(_))
    ));
    assert!(matches!(
        cluster.migrate(0, 9),
        Err(StoreError::InvalidConfig(_))
    ));
    assert_eq!(cluster.epoch(), 1);
    cluster.shutdown().expect("shutdown");
}
