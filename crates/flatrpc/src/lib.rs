//! FlatRPC (paper §4.3) as a shared-memory fabric.
//!
//! The paper's RPC lets a client RDMA-write requests **directly into the
//! message buffer of a specific server core** (chosen by keyhash) while all
//! **responses are delegated to a single agent core** near the NIC — so a
//! client needs one queue pair per server *node* instead of one per server
//! *core*, shrinking the NIC's connection cache footprint from `Nt × Nc`
//! to `Nc`.
//!
//! Without RDMA hardware, this crate reproduces the mechanism over shared
//! memory with the same roles and data flow:
//!
//! * [`ClientPort::send`] writes a request into the `(core, client)` SPSC
//!   [`ring`](ring()) — the "message buffer" the paper pre-allocates per
//!   core per client.
//! * [`ServerCore::poll`] is the server core's user-level polling loop.
//! * [`ServerCore::respond`] posts the response **verb**: core 0 — the
//!   agent core, as in the paper a regular server core that happens to sit
//!   next to the NIC — sends it directly; other cores delegate the
//!   lightweight verb to it through a per-core delegation ring (paper
//!   Fig. 6, steps 3.0/3.1).
//! * [`ServerCore::pump_delegations`] is the agent half of core 0's loop:
//!   it drains the delegation rings and completes the responses into the
//!   per-client rings.
//!
//! Clients can also join a live fabric: [`Fabric::attach_client`] grows the
//! ring matrix by one client while the server cores keep polling; each core
//! claims the new rings lazily on its next poll (the paper's connection
//! setup — registering a freshly allocated message buffer with the server —
//! without stopping the world).
//!
//! # Example
//!
//! ```
//! use flatrpc::Fabric;
//!
//! let fabric = Fabric::<u64, u64>::new(2, 1, 64);
//! let mut cores = fabric.server_cores();
//! let client = fabric.client_port(0);
//!
//! client.send(1, 7).unwrap();
//! let (from, req) = loop {
//!     if let Some(m) = cores[1].poll() {
//!         break m;
//!     }
//! };
//! cores[1].respond(from, req * 2);      // delegated verb
//! while cores[0].pump_delegations() == 0 {} // the agent core completes it
//! assert_eq!(client.recv(), 14);
//! ```

mod ring;

pub use ring::{ring, Consumer, Producer};

use obs::span::{Span, SpanCtx, Stage};
use racecheck::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use racecheck::sync::{Arc, Mutex};

/// The fabric's monotonic clock: nanoseconds since a process-wide
/// epoch, so stamps taken on any thread (client sessions, server cores,
/// replication appliers) are directly comparable. Span stamping is the
/// only consumer; the simulator never calls this — it stamps virtual
/// time straight into [`obs::span`] types.
pub mod clock {
    use std::sync::OnceLock;
    use std::time::Instant;

    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Nanoseconds since the first call in this process.
    pub fn now_ns() -> u64 {
        let epoch = *EPOCH.get_or_init(Instant::now);
        Instant::now().duration_since(epoch).as_nanos() as u64
    }
}

/// Identifies a client connection.
pub type ClientId = usize;

/// A sequenced message: the fixed header every RPC payload travels under.
///
/// FlatRPC responses are completed by the agent core, not the core that
/// executed the request, and a pipelined client keeps many requests in
/// flight — so the wire format needs a client-chosen sequence number to
/// match completions back to submissions. `seq` is opaque to the fabric.
///
/// A sampled request additionally carries its causal [`Span`] (`None`
/// for the unsampled fast path — every stamping helper is one branch on
/// that option), which the server side moves onto the response envelope
/// so the client can finalise the stage vector on delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Client-chosen correlation id, echoed back in the response envelope.
    pub seq: u64,
    /// The actual payload.
    pub body: T,
    /// Causal trace span; `None` for unsampled traffic.
    pub span: Option<Box<Span>>,
}

impl<T> Envelope<T> {
    /// Wraps `body` under sequence number `seq` (unsampled).
    pub fn new(seq: u64, body: T) -> Self {
        Envelope {
            seq,
            body,
            span: None,
        }
    }

    /// Wraps `body` under a sampled trace context.
    pub fn traced(seq: u64, body: T, ctx: SpanCtx) -> Self {
        Envelope {
            seq,
            body,
            span: Some(Box::new(Span::new(ctx))),
        }
    }

    /// Attaches an existing span (server → response hand-off).
    pub fn with_span(mut self, span: Option<Box<Span>>) -> Self {
        self.span = span;
        self
    }

    /// Stamps `stage` at `at_ns` on a sampled envelope; a no-op (one
    /// branch) otherwise.
    pub fn stamp(&mut self, stage: Stage, at_ns: u64) {
        if let Some(span) = &mut self.span {
            span.stamp(stage, at_ns);
        }
    }

    /// Detaches the span, leaving the envelope unsampled.
    pub fn take_span(&mut self) -> Option<Box<Span>> {
        self.span.take()
    }
}

/// Fabric-wide counters.
#[derive(Debug, Default)]
pub struct FabricStats {
    /// Requests delivered to server cores (successful sends only).
    pub requests: AtomicU64,
    /// Responses sent directly by the agent core.
    pub direct_responses: AtomicU64,
    /// Responses delegated from another core to the agent.
    pub delegated_responses: AtomicU64,
    /// Client ports currently live (gauge): incremented when a port is
    /// taken ([`Fabric::client_port`]) or attached
    /// ([`Fabric::attach_client`], fresh or reused), decremented when a
    /// port drops. A dropped port whose rings are fully drained is parked
    /// for reuse, so connection churn returns this gauge to its baseline
    /// instead of growing the ring matrix forever.
    pub clients_attached: AtomicU64,
    /// Sends rejected because the request ring was out of credits (the
    /// caller retries); a rising rate means a server core is falling
    /// behind its message buffers.
    pub send_backpressure: AtomicU64,
    /// High-water mark of request-ring occupancy observed at send time
    /// (messages queued in the ring just after a successful push).
    pub peak_ring_occupancy: AtomicU64,
}

impl FabricStats {
    fn note_occupancy(&self, n: u64) {
        self.peak_ring_occupancy.fetch_max(n, Ordering::Relaxed);
    }
}

/// `[core][client]` request-ring halves.
type ReqProducers<Req> = Vec<Vec<Option<Producer<(ClientId, Req)>>>>;
type ReqConsumers<Req> = Vec<Vec<Option<Consumer<(ClientId, Req)>>>>;

struct Wiring<Req, Resp> {
    nclients: usize,
    /// `[core][client]` request rings.
    req_prod: ReqProducers<Req>,
    req_cons: ReqConsumers<Req>,
    /// Per-core delegation rings into the agent (core 0).
    del_prod: Vec<Option<Producer<(ClientId, Resp)>>>,
    del_cons: Vec<Option<Consumer<(ClientId, Resp)>>>,
    /// Per-client response rings out of the agent.
    resp_prod: Vec<Option<Producer<Resp>>>,
    resp_cons: Vec<Option<Consumer<Resp>>>,
}

/// Ring ends for one dynamically attached client, waiting to be claimed:
/// each server core takes its request-ring consumer, the agent takes the
/// response-ring producer.
struct PendingClient<Req, Resp> {
    req_cons: Vec<Option<Consumer<(ClientId, Req)>>>,
    resp_prod: Option<Producer<Resp>>,
}

/// The client half of a detached port, parked for reuse: the server side
/// (request-ring consumers, the agent's response producer) stays wired,
/// so a later [`Fabric::attach_client`] can hand these ends back out
/// under the same client id without growing the ring matrix.
struct ParkedPort<Req, Resp> {
    id: ClientId,
    to_core: Vec<Producer<(ClientId, Req)>>,
    rx: Consumer<Resp>,
}

/// State shared between the fabric handle and every endpoint; carries the
/// growth list server cores sync against.
struct Shared<Req, Resp> {
    ncores: usize,
    /// Clients wired at construction (ids `0..base_clients`).
    base_clients: usize,
    capacity: usize,
    /// Number of entries published to `growth`; endpoints compare against
    /// their claimed count to skip the lock on the fast path.
    grown: AtomicUsize,
    growth: Mutex<Vec<PendingClient<Req, Resp>>>,
    /// Detached-but-drained client ports awaiting reuse.
    parked: Mutex<Vec<ParkedPort<Req, Resp>>>,
    stats: Arc<FabricStats>,
}

/// Builds and hands out the fabric's endpoints.
///
/// Construction order: create the fabric, then take the [`ServerCore`]s
/// (once) and each client's [`ClientPort`] (once each); endpoints are
/// free-standing and can move to their threads. Additional clients can
/// join later through [`Fabric::attach_client`].
pub struct Fabric<Req, Resp> {
    wiring: Mutex<Wiring<Req, Resp>>,
    shared: Arc<Shared<Req, Resp>>,
}

impl<Req: Send, Resp: Send> Fabric<Req, Resp> {
    /// Creates a fabric for `ncores` server cores and `nclients` clients
    /// with per-ring `capacity` (the paper's per-core message buffers).
    ///
    /// Core 0 is the agent core (the paper picks one on the NIC's socket).
    ///
    /// # Panics
    ///
    /// Panics on zero cores/clients/capacity.
    pub fn new(ncores: usize, nclients: usize, capacity: usize) -> Self {
        assert!(ncores > 0 && nclients > 0 && capacity > 0);
        let stats = Arc::new(FabricStats::default());
        let mut req_prod = Vec::with_capacity(ncores);
        let mut req_cons = Vec::with_capacity(ncores);
        for _ in 0..ncores {
            let mut ps = Vec::with_capacity(nclients);
            let mut cs = Vec::with_capacity(nclients);
            for _ in 0..nclients {
                let (p, c) = ring(capacity);
                ps.push(Some(p));
                cs.push(Some(c));
            }
            req_prod.push(ps);
            req_cons.push(cs);
        }
        let mut del_prod = Vec::with_capacity(ncores);
        let mut del_cons = Vec::with_capacity(ncores);
        for _ in 0..ncores {
            let (p, c) = ring(capacity * nclients.max(1));
            del_prod.push(Some(p));
            del_cons.push(Some(c));
        }
        let mut resp_prod = Vec::with_capacity(nclients);
        let mut resp_cons = Vec::with_capacity(nclients);
        for _ in 0..nclients {
            let (p, c) = ring(capacity);
            resp_prod.push(Some(p));
            resp_cons.push(Some(c));
        }
        Fabric {
            wiring: Mutex::new(Wiring {
                nclients,
                req_prod,
                req_cons,
                del_prod,
                del_cons,
                resp_prod,
                resp_cons,
            }),
            shared: Arc::new(Shared {
                ncores,
                base_clients: nclients,
                capacity,
                grown: AtomicUsize::new(0),
                growth: Mutex::new(Vec::new()),
                parked: Mutex::new(Vec::new()),
                stats,
            }),
        }
    }

    /// Takes all server-core endpoints (index = core id).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn server_cores(&self) -> Vec<ServerCore<Req, Resp>> {
        let mut w = self.wiring.lock().expect("fabric lock");
        let agent_state = AgentState {
            delegations: w
                .del_cons
                .iter_mut()
                .map(|c| c.take().expect("server cores already taken"))
                .collect(),
            responses: w
                .resp_prod
                .iter_mut()
                .map(|p| p.take().expect("server cores already taken"))
                .collect(),
            claimed: 0,
        };
        let mut agent_state = Some(agent_state);
        (0..self.shared.ncores)
            .map(|core| ServerCore {
                core,
                rx: w.req_cons[core]
                    .iter_mut()
                    .map(|c| c.take().expect("server cores already taken"))
                    .collect(),
                delegate: if core == 0 {
                    None
                } else {
                    Some(w.del_prod[core].take().expect("server cores already taken"))
                },
                agent: if core == 0 { agent_state.take() } else { None },
                next_client: 0,
                claimed: 0,
                shared: Arc::clone(&self.shared),
            })
            .collect()
    }

    /// Takes client `id`'s endpoint (ids wired at construction).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or taken twice.
    pub fn client_port(&self, id: ClientId) -> ClientPort<Req, Resp> {
        let mut w = self.wiring.lock().expect("fabric lock");
        assert!(id < w.nclients, "client id out of range");
        self.shared
            .stats
            .clients_attached
            .fetch_add(1, Ordering::Relaxed);
        ClientPort {
            id,
            to_core: (0..self.shared.ncores)
                .map(|core| {
                    w.req_prod[core][id]
                        .take()
                        .expect("client port already taken")
                })
                .collect(),
            rx: Some(w.resp_cons[id].take().expect("client port already taken")),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Attaches a new client to a live fabric and returns its port.
    ///
    /// A previously dropped port whose rings were fully drained is reused
    /// (same client id, same rings — the server side never noticed it was
    /// gone); otherwise the new rings are published to a growth list and
    /// each server core (and the agent) claims its ends lazily on its next
    /// [`ServerCore::poll`] / [`ServerCore::respond`], so attachment never
    /// blocks the data path. Requests sent before every core has synced
    /// simply wait in the ring.
    pub fn attach_client(&self) -> ClientPort<Req, Resp> {
        let shared = &self.shared;
        if let Some(parked) = shared.parked.lock().expect("fabric parked lock").pop() {
            shared
                .stats
                .clients_attached
                .fetch_add(1, Ordering::Relaxed);
            return ClientPort {
                id: parked.id,
                to_core: parked.to_core,
                rx: Some(parked.rx),
                shared: Arc::clone(shared),
            };
        }
        let mut to_core = Vec::with_capacity(shared.ncores);
        let mut req_cons = Vec::with_capacity(shared.ncores);
        for _ in 0..shared.ncores {
            let (p, c) = ring(shared.capacity);
            to_core.push(p);
            req_cons.push(Some(c));
        }
        let (resp_p, resp_c) = ring(shared.capacity);
        let mut growth = shared.growth.lock().expect("fabric growth lock");
        let id = shared.base_clients + growth.len();
        growth.push(PendingClient {
            req_cons,
            resp_prod: Some(resp_p),
        });
        // Publish while still holding the lock so `grown` stays monotonic
        // under concurrent attaches.
        shared.grown.store(growth.len(), Ordering::Release);
        drop(growth);
        shared
            .stats
            .clients_attached
            .fetch_add(1, Ordering::Relaxed);
        ClientPort {
            id,
            to_core,
            rx: Some(resp_c),
            shared: Arc::clone(shared),
        }
    }

    /// Fabric counters.
    pub fn stats(&self) -> Arc<FabricStats> {
        Arc::clone(&self.shared.stats)
    }
}

/// A client's connection: direct writes into any core's message buffer,
/// responses funneled back through the agent.
pub struct ClientPort<Req, Resp> {
    id: ClientId,
    to_core: Vec<Producer<(ClientId, Req)>>,
    /// `Some` for the port's whole life; taken only inside `Drop`.
    rx: Option<Consumer<Resp>>,
    shared: Arc<Shared<Req, Resp>>,
}

impl<Req, Resp> ClientPort<Req, Resp> {
    /// This port's client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    fn rx(&self) -> &Consumer<Resp> {
        // SAFETY-INVARIANT: `rx` is only `None` after `Drop` has taken it,
        // at which point no method can run.
        self.rx.as_ref().expect("client port rx taken")
    }

    /// Writes `req` into `core`'s message buffer (non-blocking; an `Err`
    /// means the buffer has no credits and the caller should retry).
    ///
    /// # Errors
    ///
    /// Returns the request back when the ring is full.
    pub fn send(&self, core: usize, req: Req) -> Result<(), Req> {
        let stats = &self.shared.stats;
        match self.to_core[core].push((self.id, req)) {
            Ok(()) => {
                stats.requests.fetch_add(1, Ordering::Relaxed);
                stats.note_occupancy(self.to_core[core].len() as u64);
                Ok(())
            }
            Err((_, r)) => {
                stats.send_backpressure.fetch_add(1, Ordering::Relaxed);
                Err(r)
            }
        }
    }

    /// Messages currently queued in this port's request ring into `core`
    /// (approximate under concurrency).
    pub fn ring_occupancy(&self, core: usize) -> usize {
        self.to_core[core].len()
    }

    /// Polls for one response.
    pub fn try_recv(&self) -> Option<Resp> {
        self.rx().pop()
    }

    /// Blocks (polling) for one response.
    pub fn recv(&self) -> Resp {
        let mut spins = 0u32;
        loop {
            if let Some(r) = self.rx().pop() {
                return r;
            }
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl<Req, Resp> Drop for ClientPort<Req, Resp> {
    fn drop(&mut self) {
        self.shared
            .stats
            .clients_attached
            .fetch_sub(1, Ordering::Relaxed);
        let Some(rx) = self.rx.take() else { return };
        // Park only a fully drained port: a request still in flight would
        // surface to the next owner as a stale response. A non-drained
        // port's rings are intentionally leaked to the fabric (the server
        // side keeps polling them; they just never see traffic again).
        if self.to_core.iter().all(|p| p.is_empty()) && rx.is_empty() {
            self.shared
                .parked
                .lock()
                .expect("fabric parked lock")
                .push(ParkedPort {
                    id: self.id,
                    to_core: std::mem::take(&mut self.to_core),
                    rx,
                });
        }
    }
}

/// The agent half of core 0's state: delegation inboxes from every core
/// and the per-client response rings.
struct AgentState<Resp> {
    delegations: Vec<Consumer<(ClientId, Resp)>>,
    responses: Vec<Producer<Resp>>,
    /// Growth entries whose response producer this agent has claimed.
    claimed: usize,
}

/// One server core's endpoint: poll requests, post responses. Core 0 is
/// also the **agent core** and must call
/// [`pump_delegations`](Self::pump_delegations) in its loop.
pub struct ServerCore<Req, Resp> {
    core: usize,
    rx: Vec<Consumer<(ClientId, Req)>>,
    /// Non-agent cores delegate response verbs here.
    delegate: Option<Producer<(ClientId, Resp)>>,
    /// Core 0 only: the agent state.
    agent: Option<AgentState<Resp>>,
    next_client: usize,
    /// Growth entries whose request consumer this core has claimed.
    claimed: usize,
    shared: Arc<Shared<Req, Resp>>,
}

impl<Req, Resp> ServerCore<Req, Resp> {
    /// This endpoint's core id (core 0 is the agent core).
    pub fn core(&self) -> usize {
        self.core
    }

    /// Claims request rings of clients attached since the last sync.
    fn sync_clients(&mut self) {
        if self.shared.grown.load(Ordering::Acquire) == self.claimed {
            return;
        }
        let mut growth = self.shared.growth.lock().expect("fabric growth lock");
        while self.claimed < growth.len() {
            let cons = growth[self.claimed].req_cons[self.core]
                .take()
                .expect("request ring claimed once per core");
            self.rx.push(cons);
            self.claimed += 1;
        }
    }

    /// Agent only: claims response rings of clients attached since the
    /// last sync.
    fn sync_responses(agent: &mut AgentState<Resp>, shared: &Shared<Req, Resp>) {
        if shared.grown.load(Ordering::Acquire) == agent.claimed {
            return;
        }
        let mut growth = shared.growth.lock().expect("fabric growth lock");
        while agent.claimed < growth.len() {
            let prod = growth[agent.claimed]
                .resp_prod
                .take()
                .expect("response ring claimed once by the agent");
            agent.responses.push(prod);
            agent.claimed += 1;
        }
    }

    /// Polls the per-client message buffers round-robin.
    pub fn poll(&mut self) -> Option<(ClientId, Req)> {
        self.sync_clients();
        let n = self.rx.len();
        for _ in 0..n {
            let i = self.next_client;
            self.next_client = (self.next_client + 1) % n;
            if let Some(m) = self.rx[i].pop() {
                return Some(m);
            }
        }
        None
    }

    /// Whether any request is waiting in this core's message buffers.
    ///
    /// Used by shutdown protocols: a core that intends to exit must first
    /// observe all its rings empty, or late requests would hang their
    /// clients.
    pub fn has_pending_requests(&mut self) -> bool {
        self.sync_clients();
        self.rx.iter().any(|c| !c.is_empty())
    }

    /// Posts the response verb: sent directly if this is the agent core,
    /// otherwise delegated to the agent (paper Fig. 6 step 3.0).
    pub fn respond(&mut self, client: ClientId, resp: Resp) {
        match (&mut self.agent, &self.delegate) {
            (Some(agent), _) => {
                if client >= agent.responses.len() {
                    Self::sync_responses(agent, &self.shared);
                }
                self.shared
                    .stats
                    .direct_responses
                    .fetch_add(1, Ordering::Relaxed);
                agent.responses[client].push_blocking(resp);
            }
            (_, Some(delegate)) => {
                self.shared
                    .stats
                    .delegated_responses
                    .fetch_add(1, Ordering::Relaxed);
                delegate.push_blocking((client, resp));
            }
            _ => unreachable!("every core is agent or delegating"),
        }
    }

    /// Core 0 only: drains every core's delegation ring once, completing
    /// the responses into the client rings. Returns how many were
    /// completed; always 0 on other cores.
    pub fn pump_delegations(&mut self) -> usize {
        let Some(agent) = &mut self.agent else {
            return 0;
        };
        let mut n = 0;
        for i in 0..agent.delegations.len() {
            while let Some((client, resp)) = agent.delegations[i].pop() {
                if client >= agent.responses.len() {
                    Self::sync_responses(agent, &self.shared);
                }
                agent.responses[client].push_blocking(resp);
                n += 1;
            }
        }
        n
    }
}

impl<A, B> ServerCore<Envelope<A>, Envelope<B>> {
    /// [`ServerCore::poll`] for envelope fabrics: sampled requests get
    /// their [`Stage::RingTransit`] stamp the moment they leave the
    /// message buffer, closing the client-send → server-poll interval.
    /// Unsampled requests cost one branch and no clock read.
    pub fn poll_stamped(&mut self) -> Option<(ClientId, Envelope<A>)> {
        let (client, mut env) = self.poll()?;
        if env.span.is_some() {
            env.stamp(Stage::RingTransit, clock::now_ns());
        }
        Some((client, env))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_through_agent() {
        let fabric = Fabric::<u64, u64>::new(3, 2, 16);
        let mut cores = fabric.server_cores();
        let c0 = fabric.client_port(0);
        let c1 = fabric.client_port(1);

        c0.send(2, 100).unwrap();
        c1.send(1, 200).unwrap();
        // Core 2 and core 1 poll and respond (delegated).
        let (from, req) = cores[2].poll().unwrap();
        assert_eq!((from, req), (0, 100));
        cores[2].respond(from, req + 1);
        let (from, req) = cores[1].poll().unwrap();
        assert_eq!((from, req), (1, 200));
        cores[1].respond(from, req + 1);
        assert_eq!(c0.try_recv(), None, "not delivered until the agent pumps");
        assert_eq!(cores[0].pump_delegations(), 2);
        assert_eq!(cores[1].pump_delegations(), 0, "only core 0 is the agent");
        assert_eq!(c0.try_recv(), Some(101));
        assert_eq!(c1.try_recv(), Some(201));

        let stats = fabric.stats();
        assert_eq!(stats.requests.load(Ordering::Relaxed), 2);
        assert_eq!(stats.delegated_responses.load(Ordering::Relaxed), 2);
        assert_eq!(stats.direct_responses.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn agent_core_responds_directly() {
        let fabric = Fabric::<u8, u8>::new(1, 1, 4);
        let mut cores = fabric.server_cores();
        let client = fabric.client_port(0);
        client.send(0, 9).unwrap();
        let (from, req) = cores[0].poll().unwrap();
        cores[0].respond(from, req * 2);
        // Direct path: no pump needed.
        assert_eq!(client.try_recv(), Some(18));
        assert_eq!(fabric.stats().direct_responses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn backpressure_when_buffer_full() {
        let fabric = Fabric::<u32, u32>::new(1, 1, 2);
        let _cores = fabric.server_cores();
        let client = fabric.client_port(0);
        client.send(0, 1).unwrap();
        client.send(0, 2).unwrap();
        assert!(client.send(0, 3).is_err(), "no credits left");
        let stats = fabric.stats();
        // Failed sends are not counted as delivered requests — they count
        // as backpressure events instead.
        assert_eq!(stats.requests.load(Ordering::Relaxed), 2);
        assert_eq!(stats.send_backpressure.load(Ordering::Relaxed), 1);
        // The occupancy high-water mark saw the full ring.
        assert_eq!(stats.peak_ring_occupancy.load(Ordering::Relaxed), 2);
        assert_eq!(client.ring_occupancy(0), 2);
    }

    #[test]
    fn envelope_round_trip() {
        let fabric = Fabric::<Envelope<u32>, Envelope<u32>>::new(1, 1, 4);
        let mut cores = fabric.server_cores();
        let client = fabric.client_port(0);
        client.send(0, Envelope::new(41, 10)).unwrap();
        let (from, env) = cores[0].poll().unwrap();
        cores[0].respond(from, Envelope::new(env.seq, env.body + 1));
        assert_eq!(client.recv(), Envelope::new(41, 11));
    }

    #[test]
    fn traced_envelope_accumulates_ring_transit() {
        let fabric = Fabric::<Envelope<u32>, Envelope<u32>>::new(1, 1, 4);
        let mut cores = fabric.server_cores();
        let client = fabric.client_port(0);
        let ctx = SpanCtx {
            trace_id: 99,
            op_seq: 5,
            origin_tsc: clock::now_ns(),
        };
        let mut env = Envelope::traced(5, 11u32, ctx);
        env.stamp(Stage::ClientEnqueue, clock::now_ns());
        client.send(0, env).unwrap();
        let (from, mut req) = cores[0].poll_stamped().unwrap();
        let span = req.take_span().expect("span crosses the ring");
        assert_eq!(span.ctx, ctx);
        assert_eq!(
            span.stamps.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            vec![Stage::ClientEnqueue, Stage::RingTransit]
        );
        // Monotonic stamps on one clock.
        assert!(span.stamps[0].1 >= ctx.origin_tsc);
        assert!(span.stamps[1].1 >= span.stamps[0].1);
        // The response can carry the span back.
        cores[0].respond(from, Envelope::new(req.seq, req.body).with_span(Some(span)));
        let resp = client.recv();
        assert!(resp.span.is_some());

        // Unsampled envelopes stay spanless through the stamped poll.
        client.send(0, Envelope::new(6, 1u32)).unwrap();
        let (_, req) = cores[0].poll_stamped().unwrap();
        assert!(req.span.is_none());
    }

    #[test]
    fn attach_client_to_live_fabric() {
        let fabric = Fabric::<u64, u64>::new(2, 1, 8);
        let mut cores = fabric.server_cores();
        let base = fabric.client_port(0);

        let late = fabric.attach_client();
        assert_eq!(late.id(), 1);
        late.send(1, 50).unwrap();
        base.send(1, 40).unwrap();

        // Core 1 sees both clients; responses are delegated through core 0.
        let mut got = Vec::new();
        while got.len() < 2 {
            if let Some((from, req)) = cores[1].poll() {
                cores[1].respond(from, req + 1);
                got.push((from, req));
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![(0, 40), (1, 50)]);
        while cores[0].pump_delegations() == 0 {}
        assert_eq!(base.recv(), 41);
        assert_eq!(late.recv(), 51);

        // Another attach: the agent core answers it directly.
        let later = fabric.attach_client();
        assert_eq!(later.id(), 2);
        later.send(0, 7).unwrap();
        let (from, req) = loop {
            if let Some(m) = cores[0].poll() {
                break m;
            }
        };
        cores[0].respond(from, req * 10);
        assert_eq!(later.recv(), 70);
        // Gauge: the base port and both attached ports are live.
        assert_eq!(fabric.stats().clients_attached.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn dropped_port_is_parked_and_reused() {
        let fabric = Fabric::<u64, u64>::new(1, 1, 8);
        let mut cores = fabric.server_cores();
        let gauge = || fabric.stats().clients_attached.load(Ordering::Relaxed);

        let first = fabric.attach_client();
        let first_id = first.id();
        assert_eq!(gauge(), 1);

        // Round-trip a request so the port is provably wired, then drain
        // fully before dropping.
        first.send(0, 9).unwrap();
        let (from, req) = loop {
            if let Some(m) = cores[0].poll() {
                break m;
            }
        };
        cores[0].respond(from, req + 1);
        assert_eq!(first.recv(), 10);
        drop(first);
        assert_eq!(gauge(), 0, "drop returns the gauge to baseline");

        // Reattach: same id, no ring-matrix growth, and the rings still
        // carry traffic.
        let second = fabric.attach_client();
        assert_eq!(second.id(), first_id, "drained port is reused");
        assert_eq!(gauge(), 1);
        second.send(0, 20).unwrap();
        let (from, req) = loop {
            if let Some(m) = cores[0].poll() {
                break m;
            }
        };
        cores[0].respond(from, req + 1);
        assert_eq!(second.recv(), 21);

        // Churn: many attach/drop cycles neither grow the fabric nor move
        // the gauge off baseline.
        let grown_before = fabric.shared.grown.load(Ordering::Acquire);
        drop(second);
        for _ in 0..100 {
            let port = fabric.attach_client();
            assert_eq!(port.id(), first_id);
        }
        assert_eq!(gauge(), 0);
        assert_eq!(fabric.shared.grown.load(Ordering::Acquire), grown_before);
    }

    #[test]
    fn pending_requests_visible_before_poll() {
        let fabric = Fabric::<u8, u8>::new(1, 1, 4);
        let mut cores = fabric.server_cores();
        let client = fabric.attach_client();
        client.send(0, 1).unwrap();
        assert!(cores[0].has_pending_requests());
        cores[0].poll().unwrap();
        assert!(!cores[0].has_pending_requests());
    }

    #[test]
    fn threaded_echo_server() {
        let ncores = 3usize;
        let nclients = 4usize;
        let per_client = 400u64;
        let fabric = Arc::new(Fabric::<u64, u64>::new(ncores, nclients, 64));
        let cores = fabric.server_cores();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut handles = Vec::new();
        for mut core in cores {
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut idle = core.pump_delegations() == 0;
                    if let Some((client, req)) = core.poll() {
                        core.respond(client, req.wrapping_mul(3));
                        idle = false;
                    }
                    if idle {
                        // One host core runs all these threads; yield so
                        // clients make progress.
                        std::thread::yield_now();
                    }
                }
            }));
        }

        let mut clients = Vec::new();
        for id in 0..nclients {
            // Half the clients are wired at construction, half attach to
            // the live fabric.
            let port = if id % 2 == 0 {
                fabric.client_port(id)
            } else {
                let _ = fabric.client_port(id);
                fabric.attach_client()
            };
            clients.push(std::thread::spawn(move || {
                for i in 0..per_client {
                    let core = (i % 3) as usize;
                    let mut msg = i;
                    while let Err(m) = port.send(core, msg) {
                        msg = m;
                        std::thread::yield_now();
                    }
                    let r = port.recv();
                    assert_eq!(r, i.wrapping_mul(3));
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        let stats = fabric.stats();
        assert_eq!(
            stats.requests.load(Ordering::Relaxed),
            nclients as u64 * per_client
        );
    }
}
