//! A bounded single-producer / single-consumer ring — the shared-memory
//! stand-in for an RDMA-written message buffer.

use racecheck::sync::atomic::{AtomicUsize, Ordering};
use racecheck::sync::Arc;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

use crossbeam::utils::CachePadded;

struct Inner<T> {
    head: CachePadded<AtomicUsize>, // next slot to pop
    tail: CachePadded<AtomicUsize>, // next slot to push
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: slots are accessed exclusively by the single producer (tail side)
// or the single consumer (head side), synchronized through the indices.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: same single-producer/single-consumer discipline as `Send` above.
unsafe impl<T: Send> Sync for Inner<T> {}

/// Creates a connected SPSC ring of `capacity` messages.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let mut slots = Vec::with_capacity(capacity + 1);
    slots.resize_with(capacity + 1, || UnsafeCell::new(MaybeUninit::uninit()));
    let inner = Arc::new(Inner {
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
        slots: slots.into_boxed_slice(),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
        },
        Consumer { inner },
    )
}

/// The writing end (one per sender).
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// The polling end (one per receiver).
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Producer<T> {
    /// Pushes a message; returns it back if the ring is full (the caller
    /// retries — RDMA senders see the same backpressure when a message
    /// buffer has no credits).
    pub fn push(&self, value: T) -> Result<(), T> {
        let inner = &self.inner;
        // pmlint: allow(relaxed-ordering) — the producer is `tail`'s only
        // writer, so program order suffices for its own index (racecheck
        // `ring_model`).
        let tail = inner.tail.load(Ordering::Relaxed);
        let next = (tail + 1) % inner.slots.len();
        if next == inner.head.load(Ordering::Acquire) {
            return Err(value);
        }
        // SAFETY: slot `tail` is owned by the producer until tail is
        // published.
        unsafe { (*inner.slots[tail].get()).write(value) };
        inner.tail.store(next, Ordering::Release);
        Ok(())
    }

    /// Pushes, spinning until space is available.
    pub fn push_blocking(&self, mut value: T) {
        loop {
            match self.push(value) {
                Ok(()) => return,
                Err(v) => {
                    value = v;
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Messages currently queued (approximate under concurrency: the two
    /// indices are read independently).
    pub fn len(&self) -> usize {
        occupancy(&self.inner)
    }

    /// Whether the ring currently holds no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn occupancy<T>(inner: &Inner<T>) -> usize {
    let head = inner.head.load(Ordering::Acquire);
    let tail = inner.tail.load(Ordering::Acquire);
    (tail + inner.slots.len() - head) % inner.slots.len()
}

impl<T> Consumer<T> {
    /// Polls one message.
    pub fn pop(&self) -> Option<T> {
        let inner = &self.inner;
        // pmlint: allow(relaxed-ordering) — the consumer is `head`'s only
        // writer, so program order suffices for its own index (racecheck
        // `ring_model`).
        let head = inner.head.load(Ordering::Relaxed);
        if head == inner.tail.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: slot `head` was fully written before tail was published.
        let value = unsafe { (*inner.slots[head].get()).assume_init_read() };
        inner
            .head
            .store((head + 1) % inner.slots.len(), Ordering::Release);
        Some(value)
    }

    /// Whether a message is waiting.
    pub fn is_empty(&self) -> bool {
        // pmlint: allow(relaxed-ordering) — `head` is this consumer's own
        // index; only `tail` needs Acquire to order the slot read.
        self.inner.head.load(Ordering::Relaxed) == self.inner.tail.load(Ordering::Acquire)
    }

    /// Messages currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        occupancy(&self.inner)
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Drop any undelivered messages. Relaxed loads suffice: `&mut
        // self` proves exclusive ownership, and the facade's model
        // atomics have no `get_mut`.
        // pmlint: allow(relaxed-ordering) — exclusive `&mut self` in Drop
        let mut head = self.head.load(Ordering::Relaxed);
        // pmlint: allow(relaxed-ordering) — exclusive `&mut self` in Drop
        let tail = self.tail.load(Ordering::Relaxed);
        while head != tail {
            // SAFETY: slots in [head, tail) are initialized.
            unsafe { (*self.slots[head].get()).assume_init_drop() };
            head = (head + 1) % self.slots.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let (p, c) = ring::<u32>(4);
        for i in 0..4 {
            p.push(i).unwrap();
        }
        assert!(p.push(99).is_err(), "ring should be full");
        for i in 0..4 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn len_tracks_occupancy_across_wraparound() {
        let (p, c) = ring::<u32>(3);
        assert_eq!(p.len(), 0);
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(c.len(), 2);
        c.pop().unwrap();
        assert_eq!(p.len(), 1);
        // Wrap the indices past the physical end.
        for i in 0..10 {
            p.push(i).unwrap();
            c.pop().unwrap();
        }
        assert_eq!(p.len(), 1);
        c.pop().unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn wraps_around() {
        let (p, c) = ring::<u64>(3);
        for round in 0..100u64 {
            p.push(round).unwrap();
            assert_eq!(c.pop(), Some(round));
        }
    }

    #[test]
    fn cross_thread_stream() {
        let (p, c) = ring::<u64>(64);
        let producer = std::thread::spawn(move || {
            for i in 0..100_000u64 {
                p.push_blocking(i);
            }
        });
        let mut expect = 0u64;
        while expect < 100_000 {
            if let Some(v) = c.pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn drops_undelivered_messages() {
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        struct Probe(std::sync::Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (p, c) = ring::<Probe>(8);
        p.push(Probe(Arc::clone(&flag))).ok();
        p.push(Probe(Arc::clone(&flag))).ok();
        drop(p);
        drop(c);
        assert_eq!(flag.load(Ordering::Relaxed), 2);
    }
}
