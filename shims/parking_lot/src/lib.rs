//! Local, std-only stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API surface it uses: a non-poisoning [`Mutex`] (a thin
//! wrapper over `std::sync::Mutex`) and an [`RwLock`] implemented from
//! scratch so that its `read_arc`/`write_arc` guards can *own* the
//! `Arc<RwLock<T>>` they lock — the `arc_lock` feature of the real crate,
//! which `masstree`'s lock-coupling traversal depends on.
//!
//! Semantics intentionally kept from parking_lot:
//! * locks never poison — a panic while holding a guard just unlocks;
//! * `try_lock` returns `Option` rather than a `Result`;
//! * guards are `Send`-free by default (we never send them).
//!
//! Fairness is best-effort (writers wait for readers to drain but can be
//! starved by a continuous reader stream); the workspace holds every lock
//! for short critical sections, so this does not matter in practice.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex as StdMutex, TryLockError};

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Marker type standing in for `parking_lot::RawRwLock` so type aliases
/// like `ArcRwLockReadGuard<RawRwLock, T>` compile unchanged.
#[derive(Debug, Default, Clone, Copy)]
pub struct RawRwLock;

#[derive(Debug, Default)]
struct RwState {
    readers: usize,
    writer: bool,
}

/// A readers-writer lock whose Arc-based guards own the lock they hold.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    state: StdMutex<RwState>,
    readers_done: Condvar,
    writer_done: Condvar,
    data: UnsafeCell<T>,
}

// SAFETY: same bounds as std/parking_lot — moving the lock moves the value
// (needs T: Send).
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
// SAFETY: the lock hands out &T from many threads (needs T: Sync) and
// &mut T via exclusive write acquisition (needs T: Send).
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            state: StdMutex::new(RwState::default()),
            readers_done: Condvar::new(),
            writer_done: Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn acquire_read(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while s.writer {
            s = self.writer_done.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.readers += 1;
    }

    fn release_read(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.readers -= 1;
        if s.readers == 0 {
            self.readers_done.notify_all();
        }
    }

    fn acquire_write(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while s.writer {
            s = self.writer_done.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.writer = true;
        while s.readers > 0 {
            s = self.readers_done.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn release_write(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.writer = false;
        self.writer_done.notify_all();
    }

    /// Shared access; blocks while a writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.acquire_read();
        RwLockReadGuard { lock: self }
    }

    /// Exclusive access; blocks until all readers and writers are out.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.acquire_write();
        RwLockWriteGuard { lock: self }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Shared access through an `Arc`, with a guard that owns the `Arc`
    /// (parking_lot's `arc_lock` feature).
    pub fn read_arc(self: &Arc<Self>) -> ArcRwLockReadGuard<RawRwLock, T> {
        self.acquire_read();
        ArcRwLockReadGuard {
            lock: Arc::clone(self),
            _raw: PhantomData,
        }
    }

    /// Exclusive access through an `Arc`, with a guard that owns the `Arc`.
    pub fn write_arc(self: &Arc<Self>) -> ArcRwLockWriteGuard<RawRwLock, T> {
        self.acquire_write();
        ArcRwLockWriteGuard {
            lock: Arc::clone(self),
            _raw: PhantomData,
        }
    }
}

/// Borrowing shared guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: read guards exist only while `writer == false`.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release_read();
    }
}

/// Borrowing exclusive guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the write guard holds exclusive access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the write guard holds exclusive access.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release_write();
    }
}

/// Owning shared guard: keeps the `Arc<RwLock<T>>` alive while held.
/// The `R` parameter exists only for signature compatibility with
/// parking_lot's `ArcRwLockReadGuard<RawRwLock, T>`.
pub struct ArcRwLockReadGuard<R, T: ?Sized> {
    lock: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> Deref for ArcRwLockReadGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: read guards exist only while `writer == false`.
        unsafe { &*self.lock.data.get() }
    }
}

impl<R, T: ?Sized> Drop for ArcRwLockReadGuard<R, T> {
    fn drop(&mut self) {
        self.lock.release_read();
    }
}

/// Owning exclusive guard: keeps the `Arc<RwLock<T>>` alive while held.
pub struct ArcRwLockWriteGuard<R, T: ?Sized> {
    lock: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> Deref for ArcRwLockWriteGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the write guard holds exclusive access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<R, T: ?Sized> DerefMut for ArcRwLockWriteGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the write guard holds exclusive access.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<R, T: ?Sized> Drop for ArcRwLockWriteGuard<R, T> {
    fn drop(&mut self) {
        self.lock.release_write();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mutex_basic_and_try_lock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u64));
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    for _ in 0..1000 {
                        let g = l.read();
                        assert!((*g).is_multiple_of(2), "observed a torn write");
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..2 {
                let l = Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..500 {
                        let mut g = l.write();
                        *g += 1; // transiently odd…
                        *g += 1; // …but even again before release
                    }
                });
            }
        });
        assert_eq!(*l.read(), 2000);
        assert_eq!(hits.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn arc_guards_keep_lock_alive() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let g = l.read_arc();
        drop(l); // guard keeps the lock alive
        assert_eq!(g.len(), 3);
        drop(g);

        let l = Arc::new(RwLock::new(5u32));
        let mut w = l.write_arc();
        *w = 7;
        drop(w);
        assert_eq!(*l.read_arc(), 7);
    }
}
