//! Local, std-only stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *small* slice of the `rand 0.8` API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic,
//! fast, and statistically strong enough for workload generation. It does
//! **not** produce the same streams as the real `rand` crate; everything
//! in this repository derives its expectations from seeds at test time, so
//! only determinism matters, not stream compatibility.

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface plus the convenience methods the workspace
/// uses. Automatically implemented for every [`RngCore`].
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`: the top 53 bits scaled by 2^-53.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128);
                debug_assert!(span > 0, "gen_range called with an empty range");
                // Modulo bias is < 2^-64 for every span this repo uses.
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// The user-facing sampling methods (`rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let u = r.gen_range(0u32..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_f64_unit_interval_and_bool_bias() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut heads = 0u32;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            if r.gen_bool(0.25) {
                heads += 1;
            }
        }
        assert!((2_000..3_000).contains(&heads), "p=0.25 gave {heads}/10000");
    }
}
