//! Local, std-only stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API surface its benches use: [`Criterion`] with the
//! builder knobs, [`Bencher::iter`]/[`Bencher::iter_batched`],
//! benchmark groups, and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! There are no statistics, plots, or saved baselines: each benchmark is
//! warmed up, timed over `sample_size` samples, and the per-iteration
//! mean / min across samples is printed. Good enough to spot order-of-
//! magnitude regressions by eye, which is all the repo's bench targets
//! promise (the simulator, not host time, is the measured artifact).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup; the shim times one routine call
/// per setup regardless, so the variants only exist for signature
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver (builder + registry of results).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its per-iteration timing.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: Mode::Warmup,
            deadline: Instant::now() + self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut b);

        b.mode = Mode::Measure;
        b.samples.clear();
        let per_sample = self.measurement_time / self.sample_size as u32;
        for _ in 0..self.sample_size {
            b.deadline = Instant::now() + per_sample.max(Duration::from_micros(100));
            f(&mut b);
        }

        report(id.as_ref(), &b.samples);
        self
    }

    /// Namespaces a set of related benchmarks (`group/name` ids).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Real criterion parses CLI args here; the shim has none.
    pub fn final_summary(&mut self) {}
}

/// See [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.bench_function(full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Warmup,
    Measure,
}

/// Passed to each benchmark closure; runs the routine until the current
/// sample's deadline and records mean ns/iter per sample.
pub struct Bencher {
    mode: Mode,
    deadline: Instant,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` back-to-back until the sample deadline.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            // Batch the clock reads: Instant::now() costs ~20ns, which
            // would swamp sub-100ns routines if checked every iteration.
            if iters.is_multiple_of(64) && Instant::now() >= self.deadline {
                break;
            }
        }
        self.record(start.elapsed(), iters);
    }

    /// Like [`Bencher::iter`], but `setup` runs outside the timed span.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
            if iters.is_multiple_of(16) && Instant::now() >= self.deadline {
                break;
            }
        }
        self.record(spent, iters);
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        if self.mode == Mode::Measure && iters > 0 {
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn report(id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{id:<40} {:>12}/iter  (min {:>12}, {} samples)",
        fmt_ns(mean),
        fmt_ns(min),
        samples.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a bench entry point `name()` running every target, matching
/// criterion's `name/config/targets` form and the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main()` for a bench target (`harness = false` in the manifest).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(6))
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = fast_config();
        let mut calls = 0u64;
        c.bench_function("shim/add", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls) + 1
            })
        });
        // warmup + 3 measurement samples all invoked the routine
        assert!(calls > 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_iter() {
        let mut c = fast_config();
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || vec![1u8; 32],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = fast_config();
        let mut g = c.benchmark_group("grp");
        g.bench_function(format!("case_{}", 1), |b| b.iter(|| 2 + 2));
        g.finish();
    }

    mod as_macro_user {
        use super::super::*;

        fn target(c: &mut Criterion) {
            c.bench_function("macro/one", |b| b.iter(|| black_box(1u64) * 2));
        }

        criterion_group! {
            name = benches;
            config = Criterion::default()
                .sample_size(2)
                .warm_up_time(std::time::Duration::from_millis(1))
                .measurement_time(std::time::Duration::from_millis(4));
            targets = target
        }

        #[test]
        fn group_macro_entrypoint_runs() {
            benches();
        }
    }
}
