//! Local, std-only stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API surface it uses: [`channel`] (multi-producer
//! multi-consumer channels with `unbounded`/`bounded` constructors,
//! cloneable `Sender`s/`Receiver`s and the crossbeam error enums) and
//! [`utils::CachePadded`].
//!
//! The channel is a `Mutex<VecDeque>` + two `Condvar`s — far from
//! crossbeam's lock-free implementation, but semantically equivalent:
//! FIFO per channel, disconnection when all peers of one side drop, and
//! buffered messages remain receivable after senders disconnect.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; clone freely (competing consumers).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error of [`Sender::send`]: every receiver is gone. Returns the
    /// unsent message, as crossbeam does.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error of [`Receiver::recv`]: channel empty and all senders gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing buffered right now.
        Empty,
        /// Empty and every sender is gone.
        Disconnected,
    }

    /// Error of [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with nothing to receive.
        Timeout,
        /// Empty and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// A channel with no capacity bound; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// A channel holding at most `cap` buffered messages; `send` blocks
    /// while full. `cap == 0` is rounded up to 1 (the workspace never
    /// uses rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut s = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            s.senders += 1;
            drop(s);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            s.senders -= 1;
            if s.senders == 0 {
                drop(s);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut s = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            s.receivers += 1;
            drop(s);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut s = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            s.receivers -= 1;
            if s.receivers == 0 {
                drop(s);
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] (returning the message) if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut s = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if s.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.chan.cap {
                    Some(cap) if s.queue.len() >= cap => {
                        s = self
                            .chan
                            .not_full
                            .wait(s)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            s.queue.push_back(msg);
            drop(s);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] once the channel is empty and sender-less.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut s = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = s.queue.pop_front() {
                    drop(s);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvError);
                }
                s = self
                    .chan
                    .not_empty
                    .wait(s)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut s = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = s.queue.pop_front() {
                    drop(s);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .not_empty
                    .wait_timeout(s, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                s = guard;
            }
        }

        /// Takes a message if one is buffered.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut s = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = s.queue.pop_front() {
                drop(s);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if s.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }
}

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so neighbouring fields never
    /// share a cacheline (two 64 B lines: spatial-prefetcher safe).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn fifo_and_mpmc() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_drains_then_errors() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn timeout_fires() {
        let (tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_blocks_until_popped() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn send_to_no_receiver_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn threads_pass_many_messages() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got.len(), 4000);
        assert_eq!(got[0], 0);
        assert_eq!(got[3999], 3999);
    }
}
