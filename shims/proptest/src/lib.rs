//! Local, std-only stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`Strategy`] combinators
//! (`prop_map`, `prop_flat_map`, `boxed`), [`Just`], integer-range and
//! tuple strategies, `prop::collection::vec`, `any::<T>()`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros.
//!
//! Differences from real proptest, deliberate for a shim:
//! * **no shrinking** — a failing case reports the case number and the
//!   assertion message, not a minimised input;
//! * the RNG is a fixed-seed xoshiro256++, so every run explores the same
//!   deterministic case sequence (re-running reproduces failures exactly);
//! * only the configuration knob the workspace touches (`cases`) exists.

use std::fmt;

pub mod test_runner {
    use std::fmt;

    /// Deterministic generator feeding every strategy (xoshiro256++,
    /// fixed seed: failures reproduce across runs).
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn deterministic() -> TestRng {
            // SplitMix64 expansion of an arbitrary fixed seed.
            let mut x = 0x9D8F_7A6B_5C4D_3E2Fu64;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`; modulo bias is negligible for
        /// the small bounds test strategies use.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// A failed (or rejected) test case. `prop_assert*` produce these;
    /// the `proptest!` harness turns them into panics.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }

        /// Rejection is treated the same as failure here: the shim has no
        /// case-regeneration loop.
        pub fn reject(message: impl Into<String>) -> TestCaseError {
            TestCaseError::fail(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the runner RNG.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes every drawn value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Draws a value, then draws from the strategy `f` builds out of it —
    /// for dependent generation such as "a vec and an index into it".
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!` to mix arms of
    /// different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy producing `T`.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy { .. }")
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.sample(rng);
        (self.f)(mid).sample(rng)
    }
}

/// Weighted choice among type-erased arms — the engine behind
/// `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident.$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Full-domain strategies, reachable through [`any`].
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary() -> Any<Self>;
    }

    /// The strategy returned by [`super::any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> Any<$t> {
                    Any(PhantomData)
                }
            }

            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary() -> Any<bool> {
            Any(PhantomData)
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }
}

/// `any::<T>()` — every value of `T` equally likely.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    T::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bound for [`vec()`]; build from `usize` or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs each `fn name(pat in strategy, ...) { body }` as a `#[test]`
/// over `config.cases` deterministic samples. The body runs inside a
/// closure returning `Result<(), TestCaseError>`, so `prop_assert*` can
/// early-return and `?` works on helper functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@harness ($cfg) $($rest)*);
    };
    (@harness ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut prop_rng = $crate::TestRng::deterministic();
            for prop_case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut prop_rng);)+
                let result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        prop_case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@harness ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Picks one arm per sample; `weight => strategy` arms bias the choice.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::arbitrary::Arbitrary;
    pub use crate::{any, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::TestRng::deterministic();
        let s = prop::collection::vec(3u64..7, 2..5);
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (3..7).contains(x)));
        }
    }

    #[test]
    fn oneof_weights_bias_choice() {
        let mut rng = crate::TestRng::deterministic();
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..1000).filter(|_| Strategy::sample(&s, &mut rng)).count();
        assert!((800..=990).contains(&hits), "weight 9:1 gave {hits}/1000");
    }

    #[test]
    fn flat_map_generates_dependent_values() {
        let mut rng = crate::TestRng::deterministic();
        let s = prop::collection::vec(any::<u8>(), 1..20).prop_flat_map(|v| {
            let n = v.len();
            (Just(v), 0..n)
        });
        for _ in 0..200 {
            let (v, i) = Strategy::sample(&s, &mut rng);
            assert!(i < v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn harness_runs_and_assertions_pass(x in 0u64..100, ys in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.iter().map(|&b| usize::from(b < 255) + usize::from(b == 255)).sum::<usize>());
        }
    }

    proptest! {
        fn harness_default_config_works((a, b) in (0u32..10, 0u32..10)) {
            prop_assert!(a < 10 && b < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics_with_context() {
        // Reuse the harness machinery via a nested proptest-like loop.
        let config = ProptestConfig::with_cases(4);
        let mut rng = crate::TestRng::deterministic();
        for case in 0..config.cases {
            let x = Strategy::sample(&(0u64..10), &mut rng);
            let result: Result<(), TestCaseError> = (|| {
                prop_assert!(x > 100, "x was {}", x);
                Ok(())
            })();
            if let Err(e) = result {
                panic!("proptest failed at case {case}: {e}");
            }
        }
    }
}
