//! Pipelined client sessions over the FlatRPC fabric (paper §3.4/§4.3):
//! four client threads each keep eight operations in flight, so server
//! cores find many pending log entries at once and horizontal batching
//! persists them in cacheline-amortised batches instead of one fence per
//! request.
//!
//! ```sh
//! cargo run --release --example session_pipeline
//! ```

use flatstore::prelude::*;
use flatstore::{ExecutionModel, FlatStore};

const CLIENTS: u64 = 4;
const OPS_PER_CLIENT: u64 = 25_000;

fn main() -> Result<(), StoreError> {
    let mut cfg = Config::builder()
        .pm_bytes(512 << 20)
        .ncores(4)
        .group_size(4)
        .pipeline_depth(8)
        .build()?;
    cfg.model = ExecutionModel::PipelinedHb;
    let store = FlatStore::create(cfg)?;

    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let mut session = store.session().expect("attach session");
            s.spawn(move || {
                // submit returns as soon as the request is on the
                // core's ring; completions are harvested out of order.
                for i in 0..OPS_PER_CLIENT {
                    let key = client << 32 | (i % 4096);
                    session
                        .submit(Op::put(key, format!("client{client}-op{i}")))
                        .expect("submit");
                    // A real client would do useful work here; we just
                    // drain whatever already completed.
                    for (_, result) in session.poll_completions() {
                        assert_eq!(result, Reply::Put(Ok(())));
                    }
                }
                for (_, result) in session.wait_all().expect("drain") {
                    assert_eq!(result, Reply::Put(Ok(())));
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();

    let total = CLIENTS * OPS_PER_CLIENT;
    let avg_batch = store.stats().avg_batch();
    println!(
        "{total} pipelined puts from {CLIENTS} depth-8 sessions in {secs:.2}s \
         ({:.0} ops/s), mean HB batch {avg_batch:.2}",
        total as f64 / secs
    );
    println!("{}", store.stats_report());

    // The point of pipelining: batches actually fill (depth-1 blocking
    // clients leave this pinned at ~1).
    assert!(
        avg_batch > 1.0,
        "expected batching to amortise persists, got {avg_batch:.3}"
    );

    store.shutdown()?;
    Ok(())
}
