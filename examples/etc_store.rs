//! A Facebook-ETC-style workload (the paper's §5.2 production emulation)
//! driven by several concurrent client threads against the real engine.
//!
//! ```sh
//! cargo run --release --example etc_store
//! ```

use std::sync::atomic::Ordering;
use std::time::Instant;

use flatstore::{Config, FlatStore, StoreError};
use workloads::{value_bytes, EtcWorkload, Op};

const KEYSPACE: u64 = 20_000;
const CLIENTS: u64 = 4;
const OPS_PER_CLIENT: u64 = 10_000;

fn main() -> Result<(), StoreError> {
    let cfg = Config::builder()
        .pm_bytes(512 << 20)
        .ncores(4)
        .group_size(4)
        .build()?;
    let store = FlatStore::create(cfg)?;

    // Preload every key with its class-determined size (40 % tiny 1–13 B,
    // 55 % small 14–300 B, 5 % large > 300 B).
    for key in 0..KEYSPACE {
        let len = EtcWorkload::value_len(key, KEYSPACE);
        store.put(key, value_bytes(key, len))?;
    }
    println!("preloaded {} keys", store.len());

    let start = Instant::now();
    let mut joins = Vec::new();
    for client in 0..CLIENTS {
        let h = store.handle();
        joins.push(std::thread::spawn(move || -> Result<(), StoreError> {
            // 50:50 Put:Get, zipfian over tiny+small keys.
            let mut gen = EtcWorkload::new(KEYSPACE, 0.5, client + 1);
            for _ in 0..OPS_PER_CLIENT {
                match gen.next_op() {
                    Op::Put { key, value_len } => h.put(key, value_bytes(key, value_len))?,
                    Op::Get { key } => {
                        let _ = h.get(key)?;
                    }
                    Op::Delete { key } => {
                        let _ = h.delete(key)?;
                    }
                }
            }
            Ok(())
        }));
    }
    for j in joins {
        j.join().expect("client thread")?;
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = store.stats();
    let total = CLIENTS * OPS_PER_CLIENT;
    println!(
        "{} ops in {:.2}s ({:.0} Kops/s host time) — batches {}, avg batch {:.2}, conflicts deferred {}",
        total,
        secs,
        total as f64 / secs / 1e3,
        stats.batches.load(Ordering::Relaxed),
        stats.avg_batch(),
        stats.conflicts_deferred.load(Ordering::Relaxed),
    );
    println!(
        "free PM chunks {}, GC chunks cleaned {}",
        store.free_chunks(),
        stats.gc_chunks.load(Ordering::Relaxed)
    );
    Ok(())
}
