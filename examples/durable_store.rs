//! Actually-durable FlatStore: the simulated PM region is saved to a file
//! at shutdown and reloaded on the next run, so data survives process
//! restarts. Run it twice:
//!
//! ```sh
//! cargo run --release --example durable_store   # first run: creates
//! cargo run --release --example durable_store   # second run: reopens
//! ```

use std::sync::Arc;

use flatstore::{Config, FlatStore, StoreError};
use pmem::PmRegion;

fn main() -> Result<(), StoreError> {
    let path = std::env::temp_dir().join("flatstore-demo.pm");
    let cfg = Config::builder()
        .pm_bytes(128 << 20)
        .ncores(2)
        .group_size(2)
        .build()?;

    let store = if path.exists() {
        let pm = Arc::new(PmRegion::load(&path, false).expect("load PM image"));
        println!("reopening existing image {}", path.display());
        FlatStore::open(pm, cfg)?
    } else {
        println!("creating fresh store (run again to reopen it)");
        FlatStore::create(cfg)?
    };

    let runs = store
        .get(0)?
        .map(|v| u64::from_le_bytes(v.try_into().expect("8-byte counter")))
        .unwrap_or(0);
    println!("this store has been opened {runs} time(s) before");
    store.put(0, (runs + 1).to_le_bytes())?;
    store.put(1_000 + runs, format!("run #{runs}").as_bytes())?;

    for r in 0..=runs {
        if let Some(v) = store.get(1_000 + r)? {
            println!("  remembered: {}", String::from_utf8_lossy(&v));
        }
    }

    // Clean shutdown, then persist the PM image to disk.
    let pm = store.shutdown()?;
    pm.save(&path).expect("save PM image");
    println!("saved {} ({} MB)", path.display(), pm.len() >> 20);
    Ok(())
}
