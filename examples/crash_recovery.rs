//! Crash recovery demo: acknowledged writes survive a simulated power
//! failure; unacknowledged state is discarded; the allocator's bitmaps are
//! rebuilt from the operation log (the paper's §3.5 recovery).
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use flatstore::{Config, FlatStore, StoreError};
use workloads::value_bytes;

fn main() -> Result<(), StoreError> {
    let cfg = Config::builder()
        .pm_bytes(256 << 20)
        .ncores(2)
        .group_size(2)
        .crash_tracking(true) // keep a shadow of flushed state
        .build()?;
    let store = FlatStore::create(cfg.clone())?;

    // A mix of inline (≤256 B) and allocator-backed (>256 B) values,
    // overwrites, and a delete.
    for k in 0..1_000u64 {
        store.put(k, value_bytes(k, 64))?;
    }
    for k in 0..100u64 {
        store.put(k, value_bytes(k + 7, 2000))?;
    }
    store.delete(500)?;
    store.barrier(); // every op above is acknowledged == durable

    println!("before crash: {} keys", store.len());

    // Pull the plug: everything not flushed to the persistence domain is
    // lost, exactly as on real PM hardware.
    let pm = store.kill();
    pm.simulate_crash();

    // Reopen: the clean-shutdown flag is absent, so FlatStore scans every
    // core's OpLog, rebuilds the volatile index (newest version wins) and
    // reconstructs the lazy-persist allocator's bitmaps from the live
    // pointers.
    let t = std::time::Instant::now();
    let store = FlatStore::open(pm, cfg)?;
    println!(
        "recovered {} keys in {:?} (log scan + index rebuild)",
        store.len(),
        t.elapsed()
    );

    for k in 0..1_000u64 {
        let expect = if k == 500 {
            None
        } else if k < 100 {
            Some(value_bytes(k + 7, 2000))
        } else {
            Some(value_bytes(k, 64))
        };
        assert_eq!(store.get(k)?, expect, "key {k}");
    }
    println!("all acknowledged writes intact; deleted key stayed deleted");

    // The store is fully writable again — including keys whose version
    // history spans the crash.
    store.put(500, b"back again")?;
    assert_eq!(store.get(500)?.as_deref(), Some(&b"back again"[..]));
    println!("post-recovery writes OK");
    Ok(())
}
