//! Drive the discrete-event evaluation testbed directly: compare
//! FlatStore-H against CCEH on your own workload point, inspect the
//! device counters (a miniature of the paper's Figure 7), and optionally
//! export the run's metrics and virtual-time trace:
//!
//! ```sh
//! cargo run --release --example simulate -- \
//!     --metrics-out /tmp/metrics.json --trace-out /tmp/trace.json
//! ```
//!
//! `--metrics-out` writes the FlatStore-H run's [`simkv::Summary`] as a
//! JSON [`obs::StatsReport`]; `--trace-out` writes a Chrome trace-event
//! file (open it in Perfetto or `chrome://tracing`) with one track per
//! simulated core showing batch-flush spans, group-lock holds and steals.

use simkv::{BaselineKind, Engine, ExecModel, SimConfig, SimIndex, Summary, WorkloadSpec};
use workloads::KeyDist;

/// `--metrics-out <path>` / `--trace-out <path>`, no external parser.
struct Args {
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        metrics_out: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a path argument"))
        };
        match flag.as_str() {
            "--metrics-out" => args.metrics_out = Some(take("--metrics-out")),
            "--trace-out" => args.trace_out = Some(take("--trace-out")),
            other => panic!("unknown argument {other:?} (expected --metrics-out/--trace-out)"),
        }
    }
    args
}

fn export_trace(path: &str, cfg: &SimConfig, summary: &Summary) {
    let ngroups = cfg.ncores.div_ceil(cfg.group_size);
    let mut tracks: Vec<(u32, String)> = (0..cfg.ncores)
        .map(|c| (c as u32, format!("core {c}")))
        .collect();
    tracks.extend((0..ngroups).map(|g| ((cfg.ncores + g) as u32, format!("cleaner {g}"))));
    let doc = obs::chrome_trace("simkv FlatStore-H", tracks, &summary.events);
    std::fs::write(path, doc).expect("write trace file");
    println!(
        "trace: {} events ({} dropped) -> {path}",
        summary.events.len(),
        summary.events_dropped
    );
}

fn main() {
    let args = parse_args();
    let base = SimConfig {
        ncores: 16,
        group_size: 8,
        clients: 128,
        keyspace: 50_000,
        ops: 60_000,
        warmup: 6_000,
        pool_chunks: 256,
        workload: WorkloadSpec::Ycsb {
            dist: KeyDist::Zipfian { theta: 0.99 },
            value_len: 64,
            put_ratio: 1.0,
        },
        ..SimConfig::default()
    };

    for (name, engine) in [
        (
            "FlatStore-H",
            Engine::FlatStore {
                model: ExecModel::PipelinedHb,
                index: SimIndex::Hash,
            },
        ),
        ("CCEH", Engine::Baseline(BaselineKind::Cceh)),
    ] {
        let mut cfg = base.clone();
        cfg.engine = engine;
        let exporting = name == "FlatStore-H";
        if exporting && args.trace_out.is_some() {
            cfg.trace_events = 1 << 17;
        }
        let s = simkv::run(&cfg);
        println!(
            "{name:<12}: {:6.2} Mops/s  p50 {:5.1} us  p99 {:5.1} us  avg batch {:4.1}",
            s.mops,
            s.p50_ns / 1e3,
            s.p99_ns / 1e3,
            s.avg_batch
        );
        println!("{}", s.report(name));
        if exporting {
            if let Some(path) = &args.metrics_out {
                std::fs::write(path, s.report(name).to_json()).expect("write metrics file");
                println!("metrics -> {path}");
            }
            if let Some(path) = &args.trace_out {
                export_trace(path, &cfg, &s);
            }
        }
    }
    println!("\n(16 simulated cores; vary SimConfig to sweep the design space)");
}
