//! Drive the discrete-event evaluation testbed directly: compare
//! FlatStore-H against CCEH on your own workload point and inspect the
//! device counters (a miniature of the paper's Figure 7).
//!
//! ```sh
//! cargo run --release --example simulate
//! ```

use simkv::{
    BaselineKind, Engine, ExecModel, SimConfig, SimIndex, WorkloadSpec,
};
use workloads::KeyDist;

fn main() {
    let base = SimConfig {
        ncores: 16,
        group_size: 8,
        clients: 128,
        keyspace: 50_000,
        ops: 60_000,
        warmup: 6_000,
        pool_chunks: 256,
        workload: WorkloadSpec::Ycsb {
            dist: KeyDist::Zipfian { theta: 0.99 },
            value_len: 64,
            put_ratio: 1.0,
        },
        ..SimConfig::default()
    };

    for (name, engine) in [
        (
            "FlatStore-H",
            Engine::FlatStore {
                model: ExecModel::PipelinedHb,
                index: SimIndex::Hash,
            },
        ),
        ("CCEH", Engine::Baseline(BaselineKind::Cceh)),
    ] {
        let mut cfg = base.clone();
        cfg.engine = engine;
        let s = simkv::run(&cfg);
        println!(
            "{name:<12}: {:6.2} Mops/s  p50 {:5.1} us  p99 {:5.1} us  avg batch {:4.1}",
            s.mops,
            s.p50_ns / 1e3,
            s.p99_ns / 1e3,
            s.avg_batch
        );
        println!(
            "              media writes {:>8}  merged flushes {:>8}  repeat stalls {:>6}",
            s.device.media_writes, s.device.merged_flushes, s.device.repeat_stalls
        );
    }
    println!("\n(16 simulated cores; vary SimConfig to sweep the design space)");
}
