//! Quickstart: create a FlatStore, write/read/delete, shut down cleanly and
//! reopen.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flatstore::{Config, FlatStore, StoreError};

fn main() -> Result<(), StoreError> {
    // A small engine: 256 MB of (simulated) PM, four server cores in one
    // horizontal-batching group.
    let cfg = Config::builder()
        .pm_bytes(256 << 20)
        .ncores(4)
        .group_size(4)
        .build()?;
    let store = FlatStore::create(cfg.clone())?;

    // Small values embed directly in 16-byte-headed log entries…
    store.put(1, b"tiny")?;
    // …larger values go to the lazy-persist allocator.
    let big = vec![0x42u8; 4096];
    store.put(2, &big)?;

    assert_eq!(store.get(1)?.as_deref(), Some(&b"tiny"[..]));
    assert_eq!(store.get(2)?.as_deref(), Some(&big[..]));
    assert_eq!(store.get(3)?, None);

    // Overwrites append new log entries; versions order them.
    store.put(1, b"tiny v2")?;
    assert_eq!(store.get(1)?.as_deref(), Some(&b"tiny v2"[..]));

    assert!(store.delete(2)?);
    assert_eq!(store.get(2)?, None);

    // Everything the engine measured — op counts, client-observed latency
    // percentiles, batch sizes, PM flush/fence counters — in one report
    // (also available as JSON via `.to_json()`).
    println!("{}", store.stats_report());

    // Clean shutdown snapshots the volatile index into PM…
    let pm = store.shutdown()?;
    // …so reopening is instant and the data is still there.
    let store = FlatStore::open(pm, cfg)?;
    assert_eq!(store.get(1)?.as_deref(), Some(&b"tiny v2"[..]));
    println!("reopened cleanly with {} keys", store.len());
    Ok(())
}
