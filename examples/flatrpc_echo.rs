//! FlatRPC fabric demo (paper §4.3): clients write requests into per-core
//! message buffers; server cores poll and serve a tiny per-core KV map;
//! responses funnel through the agent core (core 0).
//!
//! ```sh
//! cargo run --release --example flatrpc_echo
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use flatrpc::Fabric;

#[derive(Debug)]
enum Req {
    Put(u64, u64),
    Get(u64),
}

fn main() {
    let ncores = 3usize;
    let nclients = 4usize;
    let per_client = 20_000u64;

    let fabric = Arc::new(Fabric::<Req, Option<u64>>::new(ncores, nclients, 128));
    let stop = Arc::new(AtomicBool::new(false));

    // Server cores: poll the message buffers, serve a per-core map.
    // Core 0 additionally pumps the delegation rings (it is the agent).
    let mut servers = Vec::new();
    for mut core in fabric.server_cores() {
        let stop = Arc::clone(&stop);
        servers.push(std::thread::spawn(move || {
            let mut map = std::collections::HashMap::new();
            while !stop.load(Ordering::Relaxed) {
                let mut idle = core.pump_delegations() == 0;
                if let Some((client, req)) = core.poll() {
                    let resp = match req {
                        Req::Put(k, v) => map.insert(k, v),
                        Req::Get(k) => map.get(&k).copied(),
                    };
                    core.respond(client, resp);
                    idle = false;
                }
                if idle {
                    std::thread::yield_now();
                }
            }
        }));
    }

    let t = std::time::Instant::now();
    let mut clients = Vec::new();
    for id in 0..nclients {
        let port = fabric.client_port(id);
        clients.push(std::thread::spawn(move || {
            for i in 0..per_client {
                let key = ((id as u64) << 32) | (i % 500);
                let core = (key % 3) as usize;
                let req = if i % 2 == 0 {
                    Req::Put(key, i)
                } else {
                    Req::Get(key)
                };
                let mut msg = req;
                while let Err(back) = port.send(core, msg) {
                    msg = back;
                    std::thread::yield_now();
                }
                let _ = port.recv();
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for s in servers {
        s.join().unwrap();
    }

    let stats = fabric.stats();
    let total = nclients as u64 * per_client;
    println!(
        "{total} RPCs in {:?} — {} delegated to the agent core, {} sent directly",
        t.elapsed(),
        stats.delegated_responses.load(Ordering::Relaxed),
        stats.direct_responses.load(Ordering::Relaxed),
    );
    println!(
        "(one response ring per client regardless of {ncores} cores — the paper's Nt×Nc → Nc queue-pair reduction)"
    );
}
