//! Replicated failover demo: a primary–backup pair where every
//! acknowledged operation is durable on both nodes, the primary dies
//! without warning, and the backup promotes into a complete primary via
//! the ordinary crash-recovery log scan (no replica-specific recovery
//! code). Finally the dead primary rejoins as a stale replica and
//! catches up from its persisted ship cursors.
//!
//! ```sh
//! cargo run --release --example replicated_failover
//! ```

use flatrepl::{catch_up, ReplStats, ReplicatedStore};
use flatstore::{BackupImage, Config, FlatStore, StoreError};
use workloads::value_bytes;

fn main() -> Result<(), StoreError> {
    let cfg = Config::builder()
        .pm_bytes(256 << 20)
        .ncores(2)
        .group_size(2)
        .crash_tracking(true)
        .build()?;

    // Every put below is acked only once it is durable on the primary AND
    // covered by the backup's durable-apply watermark.
    let store = ReplicatedStore::create(cfg.clone())?;
    for k in 0..1_000u64 {
        store.put(k, value_bytes(k, 64))?;
    }
    for k in 0..100u64 {
        store.put(k, value_bytes(k + 7, 2000))?;
    }
    store.delete(500)?;
    store.barrier();

    let stats = store.repl_stats();
    println!(
        "shipped {} ops in {} batches ({:.1} ops/envelope)",
        stats.shipped_entries.get(),
        stats.ship_batches.get(),
        stats.shipped_entries.get() as f64 / stats.ship_batches.get() as f64
    );

    // The primary vanishes mid-flight; its PM loses unflushed lines.
    let (primary_pm, backup) = store.fail_primary();
    primary_pm.simulate_crash();

    // Promote: the backup's image is just per-core FlatStore logs, so the
    // stock three-path recovery rebuilds index + allocator from them.
    let t = std::time::Instant::now();
    let promoted = backup.promote(cfg.clone())?;
    println!(
        "promoted backup with {} keys in {:?} (log scan + index rebuild)",
        promoted.len(),
        t.elapsed()
    );

    for k in 0..1_000u64 {
        let expect = if k == 500 {
            None
        } else if k < 100 {
            Some(value_bytes(k + 7, 2000))
        } else {
            Some(value_bytes(k, 64))
        };
        assert_eq!(promoted.get(k)?, expect, "key {k}");
    }
    println!("every acknowledged op survived the failover");

    // The new primary keeps serving writes on its own.
    promoted.put(500, b"written post-failover")?;
    promoted.barrier();

    // Rejoin: a freshly formatted replica (in production: the repaired old
    // primary) converges by re-shipping only past its ship cursors.
    let image = BackupImage::format(&cfg)?;
    let rejoin = ReplStats::default();
    let shipped = catch_up(&promoted, &image, &rejoin)?;
    println!("rejoined stale replica: {shipped} ops re-shipped");
    let replica = FlatStore::open(image.pm(), cfg)?;
    drop(image);
    assert_eq!(
        replica.get(500)?.as_deref(),
        Some(&b"written post-failover"[..])
    );
    assert_eq!(replica.len(), promoted.len());
    println!("replica converged with the promoted primary");

    replica.shutdown()?;
    promoted.shutdown()?;
    Ok(())
}
