//! FlatStore-M: the Masstree-indexed variant with ordered range scans
//! (paper §4.2), on a time-series-style workload.
//!
//! ```sh
//! cargo run --release --example range_scan
//! ```

use flatstore::{Config, FlatStore, IndexKind, StoreError};

/// Encode (sensor, timestamp) as an ordered key.
fn key(sensor: u16, ts: u32) -> u64 {
    ((sensor as u64) << 32) | ts as u64
}

fn main() -> Result<(), StoreError> {
    let cfg = Config::builder()
        .pm_bytes(256 << 20)
        .ncores(4)
        .group_size(4)
        .index(IndexKind::Masstree)
        .build()?;
    let store = FlatStore::create(cfg)?;

    // Ingest readings from a few sensors, out of order.
    for ts in (0..5_000u32).rev() {
        for sensor in 0..4u16 {
            let reading = format!("sensor{sensor}@{ts}: {}", (ts as f64 * 0.1).sin());
            store.put(key(sensor, ts), reading.as_bytes())?;
        }
    }
    store.barrier();

    // Range scan: sensor 2, timestamps 100..110.
    let rows = store.range(key(2, 100), key(2, 110), 100)?;
    println!("sensor 2, ts 100..110 -> {} rows", rows.len());
    for (k, v) in &rows {
        println!(
            "  ts {:>4}: {}",
            k & 0xFFFF_FFFF,
            String::from_utf8_lossy(v)
        );
    }
    assert_eq!(rows.len(), 10);
    // Keys come back in order.
    assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));

    // Limits bound the scan.
    let first3 = store.range(key(1, 0), key(1, u32::MAX), 3)?;
    assert_eq!(first3.len(), 3);
    println!(
        "first 3 rows of sensor 1: ts {:?}",
        first3
            .iter()
            .map(|(k, _)| k & 0xFFFF_FFFF)
            .collect::<Vec<_>>()
    );

    // Point ops still work as usual on the ordered index.
    assert!(store.delete(key(3, 42))?);
    assert_eq!(store.get(key(3, 42))?, None);
    println!("done: {} rows resident", store.len());
    Ok(())
}
